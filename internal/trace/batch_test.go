package trace

// Property test for the BatchSource contract: NextBatch must yield
// exactly the sequence Next would, for every implementation and every
// batch-size pattern — the frontend's batch read-ahead is a pure
// performance path and must never change what the simulator observes.

import (
	"testing"

	"ucp/internal/isa"
	"ucp/internal/rng"
)

// scalarOnly hides a source's NextBatch so Limit's fallback drain path
// is exercised.
type scalarOnly struct{ src Source }

func (s scalarOnly) Next() (isa.Inst, bool) { return s.src.Next() }
func (s scalarOnly) Reset()                 { s.src.Reset() }

// drainScalar reads up to max instructions via Next.
func drainScalar(src Source, max int) []isa.Inst {
	var out []isa.Inst
	for len(out) < max {
		in, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, in)
	}
	return out
}

// drainBatch reads up to max instructions via NextBatch using the given
// repeating pattern of batch sizes.
func drainBatch(t *testing.T, src BatchSource, max int, sizes []int) []isa.Inst {
	t.Helper()
	var out []isa.Inst
	for i := 0; len(out) < max; i++ {
		sz := sizes[i%len(sizes)]
		if rem := max - len(out); sz > rem {
			sz = rem
		}
		dst := make([]isa.Inst, sz)
		n := src.NextBatch(dst)
		if n == 0 {
			break
		}
		if n > sz {
			t.Fatalf("NextBatch wrote %d into a %d-slot buffer", n, sz)
		}
		out = append(out, dst[:n]...)
	}
	return out
}

func sameInsts(a, b []isa.Inst) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func genInsts(n int, seed uint64) []isa.Inst {
	r := rng.New(seed)
	out := make([]isa.Inst, n)
	pc := uint64(0x1000)
	for i := range out {
		cl := isa.ALU
		if r.Bool(0.2) {
			cl = isa.CondBranch
		}
		out[i] = isa.Inst{PC: pc, Class: cl, Taken: r.Bool(0.5)}
		pc += isa.InstBytes
	}
	return out
}

func TestNextBatchMatchesNext(t *testing.T) {
	insts := genInsts(257, 42)
	patterns := [][]int{{1}, {3}, {64}, {1, 7, 128}, {300}}

	// Every (construction, limit, batch-size pattern) combination must
	// produce Next's exact sequence. Limits straddle the truncation
	// boundary: shorter than, equal to, and beyond the stream.
	makeSources := func() map[string]func(limit int) (Source, BatchSource) {
		return map[string]func(limit int) (Source, BatchSource){
			"slice": func(int) (Source, BatchSource) {
				return NewSliceSource(insts), NewSliceSource(insts)
			},
			"limit-over-slice": func(limit int) (Source, BatchSource) {
				return NewLimit(NewSliceSource(insts), limit),
					NewLimit(NewSliceSource(insts), limit)
			},
			"limit-over-scalar": func(limit int) (Source, BatchSource) {
				return NewLimit(scalarOnly{NewSliceSource(insts)}, limit),
					NewLimit(scalarOnly{NewSliceSource(insts)}, limit)
			},
		}
	}
	for name, mk := range makeSources() {
		for _, limit := range []int{0, 1, 100, 256, 257, 1000} {
			for pi, sizes := range patterns {
				scalar, batch := mk(limit)
				want := drainScalar(scalar, 100000)
				got := drainBatch(t, batch, 100000, sizes)
				if !sameInsts(want, got) {
					t.Fatalf("%s limit=%d pattern=%d: NextBatch gave %d insts, Next gave %d (or content differs)",
						name, limit, pi, len(got), len(want))
				}
			}
		}
	}
}

func TestNextBatchMatchesNextWalker(t *testing.T) {
	prog, err := BuildProgram(QuickProfiles()[0])
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	want := drainScalar(NewWalker(prog), n)
	for _, sizes := range [][]int{{1}, {128}, {1, 7, 128}} {
		got := drainBatch(t, NewWalker(prog), n, sizes)
		if !sameInsts(want, got) {
			t.Fatalf("walker NextBatch diverges from Next under pattern %v", sizes)
		}
	}
	// Limit over the endless walker: truncation must be exact.
	lim := NewLimit(NewWalker(prog), 777)
	got := drainBatch(t, lim, 100000, []int{100})
	if len(got) != 777 || !sameInsts(want[:777], got) {
		t.Fatalf("Limit(walker, 777) via NextBatch yielded %d insts", len(got))
	}
}
