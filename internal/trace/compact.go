package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"ucp/internal/isa"
)

// Compact (version 2) trace format: sequential-PC prediction plus
// zigzag varint deltas shrink records from the fixed 29 bytes of v1 to
// ~2-6 bytes for typical workloads. Control-flow consistency makes the
// PC of almost every instruction predictable from its predecessor, so
// most records carry no PC bytes at all.

const compactVersion = 2

// Record flag layout: bits 0-3 class, bit 4 taken, bit 5 explicit PC
// follows, bit 6 memory address delta follows, bit 7 register triple
// follows (omitted when identical to the previous record's).
const (
	flagTaken = 1 << 4
	flagPC    = 1 << 5
	flagMem   = 1 << 6
	flagRegs  = 1 << 7
	classMask = 0x0f
)

// WriteCompact serializes instructions in the v2 compact format.
func WriteCompact(w io.Writer, insts []isa.Inst) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:4], compactVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(insts)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	var expectPC, lastMem uint64
	var lastDst, lastSrc1, lastSrc2 uint8
	first := true
	for i := range insts {
		in := &insts[i]
		flags := byte(in.Class) & classMask
		if in.Taken {
			flags |= flagTaken
		}
		explicitPC := first || in.PC != expectPC
		if explicitPC {
			flags |= flagPC
		}
		hasMem := in.Class == isa.Load || in.Class == isa.Store
		if hasMem {
			flags |= flagMem
		}
		regsChanged := first || in.Dst != lastDst || in.Src1 != lastSrc1 || in.Src2 != lastSrc2
		if regsChanged {
			flags |= flagRegs
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		if explicitPC {
			if err := putVarint(int64(in.PC) - int64(expectPC)); err != nil {
				return err
			}
		}
		if in.Taken {
			// Branch target as a delta from the branch PC.
			if err := putVarint(int64(in.Target) - int64(in.PC)); err != nil {
				return err
			}
		}
		if hasMem {
			if err := putVarint(int64(in.MemAddr) - int64(lastMem)); err != nil {
				return err
			}
			lastMem = in.MemAddr
		}
		if regsChanged {
			if _, err := bw.Write([]byte{in.Dst, in.Src1, in.Src2}); err != nil {
				return err
			}
			lastDst, lastSrc1, lastSrc2 = in.Dst, in.Src1, in.Src2
		}
		expectPC = in.NextPC()
		first = false
	}
	return bw.Flush()
}

// ReadAny deserializes either trace format, dispatching on the header
// version.
func ReadAny(r io.Reader) ([]isa.Inst, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != fileMagic {
		return nil, errors.New("trace: bad magic")
	}
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, err
	}
	version := binary.LittleEndian.Uint32(hdr[0:4])
	n := binary.LittleEndian.Uint64(hdr[4:12])
	const maxInsts = 1 << 30
	if n > maxInsts {
		return nil, fmt.Errorf("trace: implausible instruction count %d", n)
	}
	// The count is still untrusted below maxInsts: a corrupt header can
	// claim a billion records (~50 GB of isa.Inst) over a byte of body.
	// Both body readers therefore grow their slice as records actually
	// parse instead of trusting n up front (see preallocInsts).
	switch version {
	case fileVersion:
		return readV1Body(br, n)
	case compactVersion:
		return readCompactBody(br, n)
	default:
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
}

// preallocInsts caps the allocation made on the header's word alone.
// Honest files pay one extra append-doubling pass beyond a million
// records; a lying header costs at most this much before the first
// truncated-record error surfaces.
const preallocInsts = 1 << 20

func preallocFor(n uint64) uint64 {
	if n > preallocInsts {
		return preallocInsts
	}
	return n
}

func readCompactBody(br *bufio.Reader, n uint64) ([]isa.Inst, error) {
	insts := make([]isa.Inst, 0, preallocFor(n))
	var expectPC, lastMem uint64
	var lastDst, lastSrc1, lastSrc2 uint8
	for i := uint64(0); i < n; i++ {
		var rec isa.Inst
		in := &rec
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: truncated at record %d: %w", i, err)
		}
		in.Class = isa.Class(flags & classMask)
		if int(in.Class) >= isa.NumClasses {
			return nil, fmt.Errorf("trace: bad class %d at record %d", in.Class, i)
		}
		in.Taken = flags&flagTaken != 0
		in.PC = expectPC
		if flags&flagPC != 0 {
			d, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: truncated PC at record %d: %w", i, err)
			}
			in.PC = uint64(int64(expectPC) + d)
		}
		if in.Taken {
			d, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: truncated target at record %d: %w", i, err)
			}
			in.Target = uint64(int64(in.PC) + d)
		}
		if flags&flagMem != 0 {
			d, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: truncated mem at record %d: %w", i, err)
			}
			in.MemAddr = uint64(int64(lastMem) + d)
			lastMem = in.MemAddr
		}
		if flags&flagRegs != 0 {
			var regs [3]byte
			if _, err := io.ReadFull(br, regs[:]); err != nil {
				return nil, fmt.Errorf("trace: truncated regs at record %d: %w", i, err)
			}
			lastDst, lastSrc1, lastSrc2 = regs[0], regs[1], regs[2]
		}
		in.Dst, in.Src1, in.Src2 = lastDst, lastSrc1, lastSrc2
		expectPC = in.NextPC()
		insts = append(insts, rec)
	}
	return insts, nil
}

// readV1Body parses the fixed-width v1 records (header already consumed).
func readV1Body(br *bufio.Reader, n uint64) ([]isa.Inst, error) {
	insts := make([]isa.Inst, 0, preallocFor(n))
	rec := make([]byte, 29)
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("trace: truncated at record %d: %w", i, err)
		}
		var in isa.Inst
		in.PC = binary.LittleEndian.Uint64(rec[0:8])
		in.Class = isa.Class(rec[8])
		if int(in.Class) >= isa.NumClasses {
			return nil, fmt.Errorf("trace: bad class %d at record %d", in.Class, i)
		}
		in.Taken = rec[9] != 0
		in.Target = binary.LittleEndian.Uint64(rec[10:18])
		in.MemAddr = binary.LittleEndian.Uint64(rec[18:26])
		in.Dst = rec[26]
		in.Src1 = rec[27]
		in.Src2 = rec[28]
		insts = append(insts, in)
	}
	return insts, nil
}
