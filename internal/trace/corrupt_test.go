package trace

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"strings"
	"testing"

	"ucp/internal/isa"
)

// header builds a UCPT file header claiming version v and n records.
func header(v uint32, n uint64) []byte {
	b := make([]byte, 16)
	copy(b, fileMagic)
	binary.LittleEndian.PutUint32(b[4:8], v)
	binary.LittleEndian.PutUint64(b[8:16], n)
	return b
}

// corruptInsts is a small well-formed instruction sequence exercising
// every record shape (explicit PC, taken branch, memory delta, register
// change) so truncation cuts land inside varied field encodings.
func corruptInsts() []isa.Inst {
	var insts []isa.Inst
	pc := uint64(0x1000)
	for i := 0; i < 50; i++ {
		in := isa.Inst{PC: pc, Class: isa.ALU, Dst: uint8(i % 8), Src1: 1, Src2: 2}
		switch i % 5 {
		case 1:
			in.Class = isa.Load
			in.MemAddr = 0x8000 + uint64(i)*64
		case 2:
			in.Class = isa.Store
			in.MemAddr = 0x9000 + uint64(i)*8
		case 3:
			in.Class = isa.CondBranch
			in.Taken = i%2 == 1
			in.Target = pc + 0x40
		}
		insts = append(insts, in)
		pc = in.NextPC()
	}
	return insts
}

// TestReadAnyTruncated cuts valid v1 and v2 files at every byte
// boundary; every prefix must either parse (short prefixes of the
// record stream never do) or fail with an error — no panic, no hang.
func TestReadAnyTruncated(t *testing.T) {
	insts := corruptInsts()
	var v1, v2 bytes.Buffer
	if err := Write(&v1, insts); err != nil {
		t.Fatal(err)
	}
	if err := WriteCompact(&v2, insts); err != nil {
		t.Fatal(err)
	}
	for name, full := range map[string][]byte{"v1": v1.Bytes(), "v2": v2.Bytes()} {
		for cut := 0; cut < len(full); cut++ {
			if _, err := ReadAny(bytes.NewReader(full[:cut])); err == nil {
				t.Fatalf("%s: prefix of %d/%d bytes parsed without error", name, cut, len(full))
			}
		}
		got, err := ReadAny(bytes.NewReader(full))
		if err != nil {
			t.Fatalf("%s: full file: %v", name, err)
		}
		if len(got) != len(insts) {
			t.Fatalf("%s: full file decoded %d insts, want %d", name, len(got), len(insts))
		}
	}
}

// TestReadAnyLyingHeader feeds headers whose record count vastly
// exceeds the body. The reader must fail gracefully with a truncation
// error and must not allocate storage proportional to the claimed
// count (a 512M-record claim would be ~25 GB if trusted).
func TestReadAnyLyingHeader(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"v2 empty body", header(compactVersion, 1<<29)},
		{"v1 empty body", header(fileVersion, 1<<29)},
		{"v1 one record", append(header(fileVersion, 1_000_000), make([]byte, 29)...)},
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for _, tc := range cases {
		if _, err := ReadAny(bytes.NewReader(tc.data)); err == nil {
			t.Errorf("%s: no error", tc.name)
		} else if !strings.Contains(err.Error(), "truncated") {
			t.Errorf("%s: error %q does not mention truncation", tc.name, err)
		}
	}
	runtime.ReadMemStats(&after)
	// Three preallocInsts-capped slices plus noise stay far under the
	// multi-gigabyte allocations a trusted count would trigger.
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<29 {
		t.Fatalf("lying headers allocated %d bytes — count is being trusted", grew)
	}
}

// TestReadAnyBadRecords checks malformed record payloads fail with a
// descriptive error instead of decoding garbage.
func TestReadAnyBadRecords(t *testing.T) {
	badClassV2 := append(header(compactVersion, 1), 0x0f) // class 15, no optional fields
	if _, err := ReadAny(bytes.NewReader(badClassV2)); err == nil || !strings.Contains(err.Error(), "bad class") {
		t.Errorf("v2 bad class: err = %v", err)
	}
	recV1 := make([]byte, 29)
	recV1[8] = 0xff // class byte
	badClassV1 := append(header(fileVersion, 1), recV1...)
	if _, err := ReadAny(bytes.NewReader(badClassV1)); err == nil || !strings.Contains(err.Error(), "bad class") {
		t.Errorf("v1 bad class: err = %v", err)
	}
	if _, err := ReadAny(bytes.NewReader(header(99, 0))); err == nil || !strings.Contains(err.Error(), "unsupported version") {
		t.Errorf("bad version: err = %v", err)
	}
	if _, err := ReadAny(bytes.NewReader(header(compactVersion, 1<<40))); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Errorf("absurd count: err = %v", err)
	}
	if _, err := ReadAny(bytes.NewReader([]byte("NOPE000000000000"))); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Errorf("bad magic: err = %v", err)
	}
}
