package trace

import (
	"bytes"
	"testing"

	"ucp/internal/isa"
)

// FuzzReadAny hardens the trace parsers against arbitrary input: they
// must never panic, and anything they accept from a round-trip seed must
// stay semantically intact.
func FuzzReadAny(f *testing.F) {
	prog, err := BuildProgram(QuickProfiles()[0])
	if err != nil {
		f.Fatal(err)
	}
	insts := Collect(NewWalker(prog), 200)
	var v1, v2 bytes.Buffer
	if err := Write(&v1, insts); err != nil {
		f.Fatal(err)
	}
	if err := WriteCompact(&v2, insts); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add([]byte("UCPT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadAny(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Whatever parses must be re-serializable.
		var buf bytes.Buffer
		if err := WriteCompact(&buf, got); err != nil {
			t.Fatalf("accepted trace failed to re-serialize: %v", err)
		}
	})
}

// FuzzValidate ensures the consistency checker never panics on
// adversarial instruction slices.
func FuzzValidate(f *testing.F) {
	f.Add(uint64(0x1000), uint8(5), true, uint64(0x2000))
	f.Fuzz(func(t *testing.T, pc uint64, class uint8, taken bool, target uint64) {
		insts := []isa.Inst{
			{PC: pc, Class: isa.Class(class % uint8(isa.NumClasses)), Taken: taken, Target: target},
			{PC: pc + 4, Class: isa.ALU},
		}
		_ = Validate(insts) // must not panic
	})
}
