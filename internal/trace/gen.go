package trace

import (
	"fmt"

	"ucp/internal/isa"
	"ucp/internal/rng"
)

// This file implements the synthetic workload generator that substitutes
// for the proprietary CVP-1 datacenter traces (see DESIGN.md). A Profile
// describes the statistical shape of a workload; BuildProgram lowers it
// to a static code image (a CFG laid out at concrete addresses) and a
// Walker interprets that image to produce an endless, control-flow
// consistent dynamic instruction stream.
//
// The generator controls exactly the properties the paper's evaluation
// depends on:
//   - static code footprint (µ-op cache / L1I / BTB pressure),
//   - hot-vs-flat function reuse (stream length in the µ-op cache),
//   - the conditional-branch difficulty mix (biased, pattern, loop,
//     history-correlated, and genuinely random H2P branches),
//   - indirect-branch target behavior (ITTAGE-learnable or not),
//   - data working-set size and access patterns (backend load latency).

// CodeBase is the address of the first generated instruction.
const CodeBase uint64 = 0x10_0000

// Profile parameterizes a synthetic workload.
type Profile struct {
	// Name identifies the trace (e.g. "srv201").
	Name string
	// Seed makes the workload reproducible.
	Seed uint64

	// Funcs is the number of generated functions; AvgFuncInsts is the
	// mean static size of each. Their product approximates the code
	// footprint in instructions (×4 bytes).
	Funcs        int
	AvgFuncInsts int
	// FlatFrac is the probability that the dispatcher picks a callee
	// uniformly instead of from a Zipf-hot distribution. High values
	// model flat datacenter profiles with huge instruction working sets.
	FlatFrac float64

	// Conditional branch difficulty mix; the four fractions need not sum
	// to one — the remainder is strongly biased branches.
	CondPatternFrac float64 // short repeating patterns (TAGE-easy)
	CondHistoryFrac float64 // correlated with recent global history
	CondRandomFrac  float64 // Bernoulli noise: the H2P population
	RandomTakenP    float64 // taken probability for random branches
	// HistMaskBitsMin/Max bound how many history bits a history-
	// correlated branch XORs together; more bits is harder to learn.
	HistMaskBitsMin, HistMaskBitsMax int

	// LoopTripMean is the mean loop trip count; FixedTripFrac is the
	// fraction of loops with a compile-time-constant trip count (these
	// are what the loop predictor captures).
	LoopTripMean  float64
	FixedTripFrac float64

	// IndirectFrac scales how much indirect control flow (switches and
	// indirect calls) the code contains. IndHistFrac is the fraction of
	// indirect sites whose target correlates with history (ITTAGE-easy).
	IndirectFrac float64
	IndHistFrac  float64

	// DataWSS is the data working-set size in bytes; StreamFrac is the
	// fraction of memory instructions that stream sequentially.
	DataWSS    uint64
	StreamFrac float64

	// LoadFrac and StoreFrac set the memory instruction mix within
	// straight-line code.
	LoadFrac, StoreFrac float64
}

// FootprintBytes returns the approximate static code footprint.
func (p *Profile) FootprintBytes() uint64 {
	return uint64(p.Funcs*p.AvgFuncInsts) * isa.InstBytes
}

type behaviorKind uint8

const (
	bBiased behaviorKind = iota
	bPattern
	bHistory
	bRandom
	bLoop
	bIndirect
)

// behavior is the build-time description of a branch site's dynamic
// policy. Runtime state lives in the Walker so Programs are immutable
// and shareable.
type behavior struct {
	kind behaviorKind
	// p is the taken probability for biased/random branches.
	p float64
	// pattern/period drive bPattern.
	pattern uint64
	period  uint8
	// histMask selects the global-history bits whose parity decides a
	// bHistory branch; histPhase inverts the outcome.
	histMask  uint64
	histPhase bool
	// Loop trip behavior: tripFixed > 0 means a constant trip count;
	// otherwise tripRange > 0 samples uniformly in
	// [tripBase, tripBase+tripRange) (low-variance, partially
	// predictable), and failing both, trips are geometric with mean
	// tripMean (high-variance, an organic H2P source).
	tripFixed int32
	tripBase  int32
	tripRange int32
	tripMean  float64
	// cases are indirect targets; caseHist selects history-correlated
	// target choice, caseFlat the probability of a uniform (vs Zipf)
	// random pick.
	cases    []uint64
	caseHist bool
	caseFlat float64
}

type memMode uint8

const (
	memNone memMode = iota
	memStream
	memRandom
	memStack
)

// StaticInst is one instruction of the generated code image.
type StaticInst struct {
	Class  isa.Class
	Target uint64 // direct branch/call target
	behav  int32  // behavior index, -1 if none

	mode   memMode
	base   uint64
	span   uint64
	stride uint32

	Dst, Src1, Src2 uint8
}

// Program is an immutable generated code image.
type Program struct {
	Profile Profile
	Code    []StaticInst
	// Entry is the dispatcher address where execution starts.
	Entry     uint64
	behaviors []behavior
}

// StaticInsts returns the number of generated static instructions.
func (p *Program) StaticInsts() int { return len(p.Code) }

// asm accumulates code during program construction.
type asm struct {
	prof      *Profile
	r         *rng.Rand
	code      []StaticInst
	behaviors []behavior
	heapBase  uint64
	regions   int
	regionSz  uint64
}

func (a *asm) pc() uint64 { return CodeBase + uint64(len(a.code))*isa.InstBytes }

func (a *asm) emit(si StaticInst) int {
	a.code = append(a.code, si)
	return len(a.code) - 1
}

func (a *asm) addBehavior(b behavior) int32 {
	a.behaviors = append(a.behaviors, b)
	return int32(len(a.behaviors) - 1)
}

// reg returns a random architectural register in [1, isa.RegCount).
func (a *asm) reg() uint8 { return uint8(1 + a.r.Intn(isa.RegCount-1)) }

// straight emits n non-branch instructions with the profile's class mix.
func (a *asm) straight(n int, fnStack uint64) {
	for i := 0; i < n; i++ {
		si := StaticInst{behav: -1, Dst: a.reg(), Src1: a.reg(), Src2: a.reg()}
		u := a.r.Float64()
		switch {
		case u < a.prof.LoadFrac:
			si.Class = isa.Load
			a.assignMem(&si, fnStack)
		case u < a.prof.LoadFrac+a.prof.StoreFrac:
			si.Class = isa.Store
			si.Dst = 0
			a.assignMem(&si, fnStack)
		case u < a.prof.LoadFrac+a.prof.StoreFrac+0.04:
			si.Class = isa.Mul
		case u < a.prof.LoadFrac+a.prof.StoreFrac+0.08:
			si.Class = isa.FP
		default:
			si.Class = isa.ALU
		}
		a.emit(si)
	}
}

func (a *asm) assignMem(si *StaticInst, fnStack uint64) {
	u := a.r.Float64()
	switch {
	case u < 0.25:
		// Stack accesses: tiny hot region, nearly always cache hits.
		si.mode = memStack
		si.base = fnStack
		si.span = 256
	case u < 0.25+a.prof.StreamFrac:
		si.mode = memStream
		si.base = a.heapBase + uint64(a.r.Intn(a.regions))*a.regionSz
		si.span = a.regionSz
		si.stride = uint32(8 << a.r.Intn(3)) // 8/16/32-byte strides
	default:
		si.mode = memRandom
		si.base = a.heapBase + uint64(a.r.Intn(a.regions))*a.regionSz
		si.span = a.regionSz
	}
}

// condBehavior samples a conditional branch policy from the profile mix.
func (a *asm) condBehavior() behavior {
	p := a.prof
	u := a.r.Float64()
	switch {
	case u < p.CondRandomFrac:
		// The H2P population: irreducibly noisy outcomes. RandomTakenP
		// is the site's target miss level (the best any predictor can
		// do); the taken bias lands on either side of 0.5.
		level := p.RandomTakenP + (a.r.Float64()-0.5)*0.2
		if level < 0.05 {
			level = 0.05
		}
		if level > 0.5 {
			level = 0.5
		}
		pr := level
		if a.r.Bool(0.5) {
			pr = 1 - level
		}
		return behavior{kind: bRandom, p: pr}
	case u < p.CondRandomFrac+p.CondPatternFrac:
		// Short-period execution-count patterns. Their learnability
		// depends on how stable the surrounding history context is, so
		// they naturally populate the medium-confidence classes.
		period := uint8(2 + a.r.Intn(2))
		return behavior{
			kind:    bPattern,
			pattern: a.r.Uint64(),
			period:  period,
		}
	case u < p.CondRandomFrac+p.CondPatternFrac+p.CondHistoryFrac:
		// Outcome = parity of `bits` recent global-history bits chosen
		// within a window that grows with bits: small selections are
		// TAGE-learnable, larger ones are progressively harder (they
		// populate the weak-counter / AltBank confidence classes).
		bits := p.HistMaskBitsMin
		if p.HistMaskBitsMax > bits {
			bits += a.r.Intn(p.HistMaskBitsMax - p.HistMaskBitsMin + 1)
		}
		if bits < 1 {
			bits = 1
		}
		window := 2 + 2*bits
		var mask uint64
		for i := 0; i < bits; i++ {
			mask |= 1 << uint(a.r.Intn(window))
		}
		return behavior{kind: bHistory, histMask: mask, histPhase: a.r.Bool(0.5)}
	default:
		// Strongly biased branches: error-check/guard style code that
		// almost always goes one way. The quartic skew keeps the mean
		// residual noise around 0.5%, as in well-predicted real code.
		n := a.r.Float64()
		pr := 0.001 + 0.02*n*n*n*n
		if a.r.Bool(0.5) {
			pr = 1 - pr
		}
		return behavior{kind: bBiased, p: pr}
	}
}

// buildBody emits roughly budget instructions of structured code and
// returns the number actually emitted. Calls are NOT emitted here — they
// are placed explicitly by BuildProgram so that the expected number of
// dynamic calls per function invocation stays below one (a subcritical
// call tree); otherwise execution gets trapped in enormous call trees and
// the footprint-cycling behavior of datacenter traces is lost. inLoop
// suppresses nested loops so loop bodies do not amplify unboundedly.
func (a *asm) buildBody(budget, depth int, fnStack uint64, inLoop bool) int {
	emitted := 0
	for emitted < budget {
		u := a.r.Float64()
		var construct int
		switch {
		case u < 0.38:
			construct = 0 // straight
		case u < 0.82:
			construct = 1 // if/else
		case u < 0.90:
			construct = 2 // loop
		case u < 0.90+0.10*a.prof.IndirectFrac*4:
			construct = 3 // switch
		default:
			construct = 0
		}
		if inLoop && construct == 2 {
			construct = 0
		}
		switch construct {
		case 0:
			n := 1 + a.r.Geometric(3)
			a.straight(n, fnStack)
			emitted += n
		case 1:
			emitted += a.buildIf(depth, fnStack, inLoop)
		case 2:
			emitted += a.buildLoop(depth, fnStack)
		case 3:
			emitted += a.buildSwitch(fnStack)
		}
	}
	return emitted
}

// buildIf lays out: cond-branch(to else), then-code, jump(end), else-code.
// The conditional branch taken direction goes to the else label.
func (a *asm) buildIf(depth int, fnStack uint64, inLoop bool) int {
	start := len(a.code)
	bi := a.addBehavior(a.condBehavior())
	condIdx := a.emit(StaticInst{Class: isa.CondBranch, behav: bi, Src1: a.reg()})
	thenN := 1 + a.r.Geometric(4)
	if depth < 3 && a.r.Bool(0.3) {
		a.buildBody(thenN, depth+1, fnStack, inLoop)
	} else {
		a.straight(thenN, fnStack)
	}
	jmpIdx := a.emit(StaticInst{Class: isa.DirectJump, behav: -1})
	a.code[condIdx].Target = a.pc()
	elseN := 1 + a.r.Geometric(3)
	a.straight(elseN, fnStack)
	a.code[jmpIdx].Target = a.pc()
	return len(a.code) - start
}

// buildLoop lays out a do-while loop: body, cond-branch(back to top).
// Taken means "iterate again".
func (a *asm) buildLoop(depth int, fnStack uint64) int {
	start := len(a.code)
	top := a.pc()
	bodyN := 2 + a.r.Geometric(4)
	if depth < 3 && a.r.Bool(0.35) {
		a.buildBody(bodyN, depth+1, fnStack, true)
	} else {
		a.straight(bodyN, fnStack)
	}
	b := behavior{kind: bLoop, tripMean: a.prof.LoopTripMean}
	switch {
	case a.r.Bool(a.prof.FixedTripFrac):
		b.tripFixed = int32(2 + a.r.Intn(int(a.prof.LoopTripMean*2)+1))
	case a.r.Bool(0.85):
		base := int32(a.prof.LoopTripMean) - 1
		if base < 2 {
			base = 2
		}
		b.tripBase, b.tripRange = base, 3
	}
	bi := a.addBehavior(b)
	a.emit(StaticInst{Class: isa.CondBranch, Target: top, behav: bi, Src1: a.reg()})
	return len(a.code) - start
}

// buildSwitch lays out an indirect jump over 2..6 cases.
func (a *asm) buildSwitch(fnStack uint64) int {
	start := len(a.code)
	n := 2 + a.r.Intn(5)
	bi := a.addBehavior(behavior{
		kind:     bIndirect,
		caseHist: a.r.Bool(a.prof.IndHistFrac),
	})
	a.emit(StaticInst{Class: isa.IndirectJump, behav: bi, Src1: a.reg()})
	var jmps []int
	cases := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		cases = append(cases, a.pc())
		a.straight(1+a.r.Geometric(3), fnStack)
		jmps = append(jmps, a.emit(StaticInst{Class: isa.DirectJump, behav: -1}))
	}
	end := a.pc()
	for _, j := range jmps {
		a.code[j].Target = end
	}
	a.behaviors[bi].cases = cases
	return len(a.code) - start
}

// buildCall emits either a direct call to one callee or an indirect call
// over a few callees.
func (a *asm) buildCall(callees []uint64) int {
	start := len(a.code)
	if a.r.Bool(a.prof.IndirectFrac) && len(callees) >= 2 {
		k := 2 + a.r.Intn(min(3, len(callees)-1))
		cs := make([]uint64, 0, k)
		for i := 0; i < k; i++ {
			cs = append(cs, callees[a.r.Intn(len(callees))])
		}
		bi := a.addBehavior(behavior{
			kind:     bIndirect,
			cases:    cs,
			caseHist: a.r.Bool(a.prof.IndHistFrac),
		})
		a.emit(StaticInst{Class: isa.IndirectCall, behav: bi, Src1: a.reg()})
	} else {
		t := callees[a.r.Zipf(len(callees))]
		a.emit(StaticInst{Class: isa.Call, Target: t, behav: -1})
	}
	return len(a.code) - start
}

// stackBase is where per-function stack frames live.
const stackBase uint64 = 1 << 40

// BuildProgram lowers a profile to a concrete code image.
func BuildProgram(prof Profile) (*Program, error) {
	if prof.Funcs < 1 || prof.AvgFuncInsts < 16 {
		return nil, fmt.Errorf("trace: profile %q needs Funcs>=1, AvgFuncInsts>=16", prof.Name)
	}
	r := rng.New(prof.Seed)
	a := &asm{prof: &prof, r: r, heapBase: 1 << 32}
	a.regionSz = 16 * 1024
	if prof.DataWSS < a.regionSz {
		a.regionSz = 4096
	}
	a.regions = int(prof.DataWSS / a.regionSz)
	if a.regions < 1 {
		a.regions = 1
	}

	// Build functions back to front so function i can call j > i,
	// keeping the call graph a DAG (no unbounded recursion).
	funcAddrs := make([]uint64, prof.Funcs)
	type pending struct {
		idx  int
		code []StaticInst
		behs []behavior
	}
	// We emit back-to-front into a temporary asm per function, then
	// concatenate front-to-back. Simpler: lay out functions in reverse
	// address order is wrong; instead do two passes — first compute
	// sizes, then emit. To stay single-pass, lay function N-1 first at
	// CodeBase and give lower-index functions higher addresses.
	for i := prof.Funcs - 1; i >= 0; i-- {
		funcAddrs[i] = a.pc()
		fnStack := stackBase + uint64(i)*4096
		// Callees are the next few functions (already emitted, since we
		// build back to front); a narrow fan-out keeps call trees local
		// so a dispatcher pick touches a small contiguous code cluster.
		callees := funcAddrs[i+1:]
		if len(callees) > 12 {
			callees = callees[:12]
		}
		budget := prof.AvgFuncInsts/2 + a.r.Intn(prof.AvgFuncInsts)
		// Call sites per function: 0 (45%), 1 (35%), or 2 (20%) —
		// expected 0.75 dynamic calls per invocation keeps call trees
		// finite (mean tree size 4 invocations).
		nCalls := 0
		switch u := a.r.Float64(); {
		case u < 0.45:
		case u < 0.80:
			nCalls = 1
		default:
			nCalls = 2
		}
		if len(callees) == 0 {
			nCalls = 0
		}
		a.straight(3+a.r.Intn(4), fnStack)
		seg := budget / (nCalls + 1)
		for s := 0; s <= nCalls; s++ {
			a.buildBody(seg, 0, fnStack, false)
			if s < nCalls {
				a.buildCall(callees)
			}
		}
		a.emit(StaticInst{Class: isa.Return, behav: -1})
	}

	// Dispatcher: an endless loop indirectly calling top-level functions.
	entry := a.pc()
	dispStack := stackBase + uint64(prof.Funcs)*4096
	a.straight(3, dispStack)
	bi := a.addBehavior(behavior{
		kind:     bIndirect,
		cases:    append([]uint64(nil), funcAddrs...),
		caseFlat: prof.FlatFrac,
	})
	a.emit(StaticInst{Class: isa.IndirectCall, behav: bi, Src1: a.reg()})
	a.straight(2, dispStack)
	a.emit(StaticInst{Class: isa.DirectJump, Target: entry, behav: -1})

	return &Program{
		Profile:   prof,
		Code:      a.code,
		Entry:     entry,
		behaviors: a.behaviors,
	}, nil
}

// branchState is the per-site runtime state owned by a Walker.
type branchState struct {
	idx   uint32
	trips int32
}

// Walker interprets a Program, producing an endless instruction stream.
// It implements Source (Next never returns ok=false; wrap in a Limit).
type Walker struct {
	prog   *Program
	r      *rng.Rand
	pc     uint64
	stack  []uint64
	ghist  uint64
	st     []branchState
	memCnt []uint32
}

// NewWalker returns a fresh interpreter over prog.
func NewWalker(prog *Program) *Walker {
	w := &Walker{prog: prog}
	w.Reset()
	return w
}

// Reset implements Source.
func (w *Walker) Reset() {
	w.r = rng.New(w.prog.Profile.Seed ^ 0xdeadbeefcafe)
	w.pc = w.prog.Entry
	w.stack = w.stack[:0]
	w.ghist = 0
	if w.st == nil {
		w.st = make([]branchState, len(w.prog.behaviors))
		w.memCnt = make([]uint32, len(w.prog.Code))
	} else {
		for i := range w.st {
			w.st[i] = branchState{}
		}
		for i := range w.memCnt {
			w.memCnt[i] = 0
		}
	}
}

// parity returns 1-bit parity of x.
func parity(x uint64) bool {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x&1 != 0
}

func mixHash(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// Next implements Source.
func (w *Walker) Next() (isa.Inst, bool) {
	idx := int((w.pc - CodeBase) / isa.InstBytes)
	si := &w.prog.Code[idx]
	in := isa.Inst{
		PC:    w.pc,
		Class: si.Class,
		Dst:   si.Dst,
		Src1:  si.Src1,
		Src2:  si.Src2,
	}
	switch si.Class {
	case isa.CondBranch:
		b := &w.prog.behaviors[si.behav]
		st := &w.st[si.behav]
		taken := w.evalCond(b, st)
		in.Taken = taken
		in.Target = si.Target
		w.ghist = w.ghist<<1 | b2u(taken)
	case isa.DirectJump:
		in.Taken = true
		in.Target = si.Target
	case isa.Call:
		in.Taken = true
		in.Target = si.Target
		w.stack = append(w.stack, w.pc+isa.InstBytes)
	case isa.IndirectJump, isa.IndirectCall:
		b := &w.prog.behaviors[si.behav]
		in.Taken = true
		in.Target = w.evalIndirect(b)
		if si.Class == isa.IndirectCall {
			w.stack = append(w.stack, w.pc+isa.InstBytes)
		}
	case isa.Return:
		in.Taken = true
		if n := len(w.stack); n > 0 {
			in.Target = w.stack[n-1]
			w.stack = w.stack[:n-1]
		} else {
			// Defensive: a return with an empty stack restarts the
			// dispatcher. Generated programs never hit this.
			in.Target = w.prog.Entry
		}
	case isa.Load, isa.Store:
		in.MemAddr = w.memAddr(si, idx)
	}
	w.pc = in.NextPC()
	return in, true
}

// NextBatch implements BatchSource. The stream is endless, so the whole
// of dst is always filled.
func (w *Walker) NextBatch(dst []isa.Inst) int {
	for i := range dst {
		dst[i], _ = w.Next()
	}
	return len(dst)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (w *Walker) evalCond(b *behavior, st *branchState) bool {
	switch b.kind {
	case bBiased, bRandom:
		return w.r.Bool(b.p)
	case bPattern:
		bit := b.pattern>>(st.idx%uint32(b.period))&1 != 0
		st.idx++
		return bit
	case bHistory:
		return parity(w.ghist&b.histMask) != b.histPhase
	case bLoop:
		if st.trips <= 0 {
			switch {
			case b.tripFixed > 0:
				st.trips = b.tripFixed
			case b.tripRange > 0:
				st.trips = b.tripBase + int32(w.r.Intn(int(b.tripRange)))
			default:
				st.trips = int32(w.r.Geometric(b.tripMean))
			}
		}
		st.trips--
		return st.trips > 0
	default:
		return false
	}
}

func (w *Walker) evalIndirect(b *behavior) uint64 {
	n := len(b.cases)
	if n == 1 {
		return b.cases[0]
	}
	var i int
	switch {
	case b.caseHist:
		i = int(mixHash(w.ghist) % uint64(n))
	case b.caseFlat > 0 && w.r.Bool(b.caseFlat):
		i = w.r.Intn(n)
	default:
		i = w.r.Zipf(n)
	}
	return b.cases[i]
}

func (w *Walker) memAddr(si *StaticInst, idx int) uint64 {
	switch si.mode {
	case memStream:
		cnt := w.memCnt[idx]
		w.memCnt[idx]++
		off := (uint64(cnt) * uint64(si.stride)) % si.span
		return si.base + off
	case memRandom:
		return si.base + (w.r.Uint64n(si.span) &^ 7)
	case memStack:
		return si.base + (w.r.Uint64n(si.span) &^ 7)
	default:
		return 0
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// BehaviorDescAt returns a debug description of the branch behavior at
// pc ("biased p=0.98", "pattern period=3", ...). It returns "" for
// non-branch or behavior-free instructions. Intended for tests and
// workload diagnostics.
func (p *Program) BehaviorDescAt(pc uint64) string {
	idx := int((pc - CodeBase) / isa.InstBytes)
	if idx < 0 || idx >= len(p.Code) || p.Code[idx].behav < 0 {
		return ""
	}
	b := &p.behaviors[p.Code[idx].behav]
	switch b.kind {
	case bBiased:
		return fmt.Sprintf("biased p=%.3f", b.p)
	case bPattern:
		return fmt.Sprintf("pattern period=%d", b.period)
	case bHistory:
		return fmt.Sprintf("history mask=%#x", b.histMask)
	case bRandom:
		return fmt.Sprintf("random p=%.3f", b.p)
	case bLoop:
		return fmt.Sprintf("loop fixed=%d mean=%.1f", b.tripFixed, b.tripMean)
	case bIndirect:
		return fmt.Sprintf("indirect cases=%d hist=%v", len(b.cases), b.caseHist)
	}
	return "?"
}

// ClassAt returns the instruction class at pc. It implements the
// simulator's CodeInfo interface (post-decode class knowledge for UCP's
// alternate fill path).
func (p *Program) ClassAt(pc uint64) (isa.Class, bool) {
	idx := int((pc - CodeBase) / isa.InstBytes)
	if pc < CodeBase || idx >= len(p.Code) || pc%isa.InstBytes != 0 {
		return isa.ALU, false
	}
	return p.Code[idx].Class, true
}
