package trace

// DefaultProfiles returns the standard workload set used by the
// experiment harness. It mirrors the composition of the paper's CVP-1
// subset (2 FP, 97 INT, 73 crypto, 134 datacenter traces) at laptop
// scale: a few representatives per category, spanning the same
// qualitative range of code footprint (≪µ-op cache reach up to ~1 MB),
// branch predictability, and data working-set size.
//
// Category intent:
//   - crypto: small, loopy, highly predictable kernels. µ-op cache hit
//     rates near 99%, low MPKI — the paper's right-hand tail in Fig. 3.
//   - fp/int: moderate footprints, mixed difficulty.
//   - srv (datacenter): large flat code footprints that over-subscribe
//     the µ-op cache, with a meaningful H2P branch population — the
//     traces where UCP pays off.
func DefaultProfiles() []Profile {
	return []Profile{
		{
			Name: "crypto01", Seed: 11, Funcs: 16, AvgFuncInsts: 140,
			FlatFrac: 0.05, CondPatternFrac: 0.04, CondHistoryFrac: 0.1,
			CondRandomFrac: 0.008, RandomTakenP: 0.2,
			HistMaskBitsMin: 1, HistMaskBitsMax: 2,
			LoopTripMean: 14, FixedTripFrac: 0.9,
			IndirectFrac: 0.02, IndHistFrac: 0.8,
			DataWSS: 64 << 10, StreamFrac: 0.6, LoadFrac: 0.24, StoreFrac: 0.10,
		},
		{
			Name: "crypto02", Seed: 12, Funcs: 24, AvgFuncInsts: 140,
			FlatFrac: 0.05, CondPatternFrac: 0.04, CondHistoryFrac: 0.1,
			CondRandomFrac: 0.012, RandomTakenP: 0.2,
			HistMaskBitsMin: 1, HistMaskBitsMax: 2,
			LoopTripMean: 10, FixedTripFrac: 0.9,
			IndirectFrac: 0.02, IndHistFrac: 0.8,
			DataWSS: 128 << 10, StreamFrac: 0.7, LoadFrac: 0.22, StoreFrac: 0.12,
		},
		{
			Name: "crypto03", Seed: 13, Funcs: 12, AvgFuncInsts: 130,
			FlatFrac: 0.02, CondPatternFrac: 0.03, CondHistoryFrac: 0.1,
			CondRandomFrac: 0.006, RandomTakenP: 0.2,
			HistMaskBitsMin: 1, HistMaskBitsMax: 2,
			LoopTripMean: 20, FixedTripFrac: 0.85,
			IndirectFrac: 0.01, IndHistFrac: 0.9,
			DataWSS: 32 << 10, StreamFrac: 0.75, LoadFrac: 0.26, StoreFrac: 0.08,
		},
		{
			Name: "fp01", Seed: 21, Funcs: 48, AvgFuncInsts: 140,
			FlatFrac: 0.1, CondPatternFrac: 0.05, CondHistoryFrac: 0.1,
			CondRandomFrac: 0.015, RandomTakenP: 0.2,
			HistMaskBitsMin: 1, HistMaskBitsMax: 2,
			LoopTripMean: 24, FixedTripFrac: 0.75,
			IndirectFrac: 0.03, IndHistFrac: 0.6,
			DataWSS: 4 << 20, StreamFrac: 0.8, LoadFrac: 0.28, StoreFrac: 0.12,
		},
		{
			Name: "fp02", Seed: 22, Funcs: 64, AvgFuncInsts: 140,
			FlatFrac: 0.15, CondPatternFrac: 0.05, CondHistoryFrac: 0.1,
			CondRandomFrac: 0.02, RandomTakenP: 0.22,
			HistMaskBitsMin: 1, HistMaskBitsMax: 2,
			LoopTripMean: 16, FixedTripFrac: 0.7,
			IndirectFrac: 0.04, IndHistFrac: 0.5,
			DataWSS: 8 << 20, StreamFrac: 0.7, LoadFrac: 0.26, StoreFrac: 0.14,
		},
		{
			Name: "int01", Seed: 31, Funcs: 80, AvgFuncInsts: 150,
			FlatFrac: 0.25, CondPatternFrac: 0.015, CondHistoryFrac: 0.12,
			CondRandomFrac: 0.02, RandomTakenP: 0.22,
			HistMaskBitsMin: 1, HistMaskBitsMax: 2,
			LoopTripMean: 8, FixedTripFrac: 0.65,
			IndirectFrac: 0.06, IndHistFrac: 0.5,
			DataWSS: 1 << 20, StreamFrac: 0.4, LoadFrac: 0.25, StoreFrac: 0.11,
		},
		{
			Name: "int02", Seed: 32, Funcs: 128, AvgFuncInsts: 150,
			FlatFrac: 0.3, CondPatternFrac: 0.015, CondHistoryFrac: 0.12,
			CondRandomFrac: 0.025, RandomTakenP: 0.25,
			HistMaskBitsMin: 1, HistMaskBitsMax: 2,
			LoopTripMean: 8, FixedTripFrac: 0.65,
			IndirectFrac: 0.07, IndHistFrac: 0.45,
			DataWSS: 2 << 20, StreamFrac: 0.35, LoadFrac: 0.24, StoreFrac: 0.12,
		},
		{
			Name: "int03", Seed: 33, Funcs: 170, AvgFuncInsts: 150,
			FlatFrac: 0.35, CondPatternFrac: 0.015, CondHistoryFrac: 0.12,
			CondRandomFrac: 0.03, RandomTakenP: 0.28,
			HistMaskBitsMin: 1, HistMaskBitsMax: 2,
			LoopTripMean: 7, FixedTripFrac: 0.65,
			IndirectFrac: 0.08, IndHistFrac: 0.4,
			DataWSS: 2 << 20, StreamFrac: 0.3, LoadFrac: 0.23, StoreFrac: 0.12,
		},
		{
			Name: "int04", Seed: 34, Funcs: 210, AvgFuncInsts: 155,
			FlatFrac: 0.4, CondPatternFrac: 0.015, CondHistoryFrac: 0.12,
			CondRandomFrac: 0.035, RandomTakenP: 0.28,
			HistMaskBitsMin: 1, HistMaskBitsMax: 3,
			LoopTripMean: 7, FixedTripFrac: 0.6,
			IndirectFrac: 0.08, IndHistFrac: 0.4,
			DataWSS: 4 << 20, StreamFrac: 0.3, LoadFrac: 0.24, StoreFrac: 0.12,
		},
		{
			Name: "srv201", Seed: 41, Funcs: 300, AvgFuncInsts: 150,
			FlatFrac: 0.5, CondPatternFrac: 0.015, CondHistoryFrac: 0.12,
			CondRandomFrac: 0.025, RandomTakenP: 0.25,
			HistMaskBitsMin: 1, HistMaskBitsMax: 2,
			LoopTripMean: 8, FixedTripFrac: 0.65,
			IndirectFrac: 0.1, IndHistFrac: 0.45,
			DataWSS: 4 << 20, StreamFrac: 0.25, LoadFrac: 0.25, StoreFrac: 0.12,
		},
		{
			Name: "srv202", Seed: 42, Funcs: 380, AvgFuncInsts: 150,
			FlatFrac: 0.6, CondPatternFrac: 0.015, CondHistoryFrac: 0.12,
			CondRandomFrac: 0.03, RandomTakenP: 0.26,
			HistMaskBitsMin: 1, HistMaskBitsMax: 3,
			LoopTripMean: 7, FixedTripFrac: 0.6,
			IndirectFrac: 0.1, IndHistFrac: 0.4,
			DataWSS: 6 << 20, StreamFrac: 0.25, LoadFrac: 0.24, StoreFrac: 0.12,
		},
		{
			Name: "srv203", Seed: 43, Funcs: 450, AvgFuncInsts: 150,
			FlatFrac: 0.65, CondPatternFrac: 0.015, CondHistoryFrac: 0.14,
			CondRandomFrac: 0.03, RandomTakenP: 0.25,
			HistMaskBitsMin: 1, HistMaskBitsMax: 2,
			LoopTripMean: 7, FixedTripFrac: 0.65,
			IndirectFrac: 0.12, IndHistFrac: 0.5,
			DataWSS: 8 << 20, StreamFrac: 0.3, LoadFrac: 0.25, StoreFrac: 0.11,
		},
		{
			Name: "srv204", Seed: 44, Funcs: 520, AvgFuncInsts: 150,
			FlatFrac: 0.7, CondPatternFrac: 0.015, CondHistoryFrac: 0.12,
			CondRandomFrac: 0.04, RandomTakenP: 0.28,
			HistMaskBitsMin: 1, HistMaskBitsMax: 3,
			LoopTripMean: 7, FixedTripFrac: 0.6,
			IndirectFrac: 0.12, IndHistFrac: 0.35,
			DataWSS: 8 << 20, StreamFrac: 0.25, LoadFrac: 0.24, StoreFrac: 0.12,
		},
		{
			Name: "srv205", Seed: 45, Funcs: 600, AvgFuncInsts: 150,
			FlatFrac: 0.75, CondPatternFrac: 0.015, CondHistoryFrac: 0.12,
			CondRandomFrac: 0.045, RandomTakenP: 0.3,
			HistMaskBitsMin: 1, HistMaskBitsMax: 3,
			LoopTripMean: 6, FixedTripFrac: 0.6,
			IndirectFrac: 0.14, IndHistFrac: 0.35,
			DataWSS: 12 << 20, StreamFrac: 0.2, LoadFrac: 0.25, StoreFrac: 0.12,
		},
		{
			Name: "srv206", Seed: 46, Funcs: 700, AvgFuncInsts: 150,
			FlatFrac: 0.8, CondPatternFrac: 0.015, CondHistoryFrac: 0.1,
			CondRandomFrac: 0.05, RandomTakenP: 0.32,
			HistMaskBitsMin: 1, HistMaskBitsMax: 3,
			LoopTripMean: 6, FixedTripFrac: 0.55,
			IndirectFrac: 0.14, IndHistFrac: 0.3,
			DataWSS: 12 << 20, StreamFrac: 0.2, LoadFrac: 0.24, StoreFrac: 0.12,
		},
		{
			Name: "srv207", Seed: 47, Funcs: 800, AvgFuncInsts: 150,
			FlatFrac: 0.85, CondPatternFrac: 0.015, CondHistoryFrac: 0.1,
			CondRandomFrac: 0.055, RandomTakenP: 0.32,
			HistMaskBitsMin: 1, HistMaskBitsMax: 3,
			LoopTripMean: 6, FixedTripFrac: 0.55,
			IndirectFrac: 0.16, IndHistFrac: 0.3,
			DataWSS: 16 << 20, StreamFrac: 0.18, LoadFrac: 0.25, StoreFrac: 0.12,
		},
		{
			Name: "srv208", Seed: 48, Funcs: 900, AvgFuncInsts: 150,
			FlatFrac: 0.9, CondPatternFrac: 0.015, CondHistoryFrac: 0.1,
			CondRandomFrac: 0.06, RandomTakenP: 0.35,
			HistMaskBitsMin: 2, HistMaskBitsMax: 3,
			LoopTripMean: 6, FixedTripFrac: 0.55,
			IndirectFrac: 0.16, IndHistFrac: 0.25,
			DataWSS: 16 << 20, StreamFrac: 0.15, LoadFrac: 0.24, StoreFrac: 0.12,
		},
		{
			Name: "srv209", Seed: 49, Funcs: 500, AvgFuncInsts: 150,
			FlatFrac: 0.55, CondPatternFrac: 0.015, CondHistoryFrac: 0.1,
			CondRandomFrac: 0.07, RandomTakenP: 0.4,
			HistMaskBitsMin: 1, HistMaskBitsMax: 3,
			LoopTripMean: 6, FixedTripFrac: 0.55,
			IndirectFrac: 0.1, IndHistFrac: 0.3,
			DataWSS: 8 << 20, StreamFrac: 0.2, LoadFrac: 0.25, StoreFrac: 0.12,
		},
	}
}

// ProfileByName returns the default profile with the given name, or
// ok=false if it does not exist.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range DefaultProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// QuickProfiles returns a reduced trace set for fast tests and benches:
// one representative per category.
func QuickProfiles() []Profile {
	want := map[string]bool{"crypto02": true, "int02": true, "srv203": true, "srv206": true}
	var out []Profile
	for _, p := range DefaultProfiles() {
		if want[p.Name] {
			out = append(out, p)
		}
	}
	return out
}
