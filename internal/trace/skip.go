package trace

import "ucp/internal/isa"

// Skipper is an optional Source fast path for fast-forwarding: Skip(n)
// advances the stream past up to n instructions without materializing
// them. Implementations must leave the stream exactly where n calls to
// Next would have (same position, same generator state), returning the
// number actually skipped — short only at end of stream. The sampled
// simulation controller uses it to jump between detailed windows.
type Skipper interface {
	Source
	// Skip advances past up to n instructions, returning how many were
	// skipped.
	Skip(n int) int
}

// SkipN fast-forwards src by up to n instructions, using the Skip fast
// path when src provides one and draining Next otherwise. It returns
// the number of instructions actually skipped.
func SkipN(src Source, n int) int {
	if s, ok := src.(Skipper); ok {
		return s.Skip(n)
	}
	for i := 0; i < n; i++ {
		if _, ok := src.Next(); !ok {
			return i
		}
	}
	return n
}

// Skip implements Skipper in O(1): the backing slice is random access.
func (s *SliceSource) Skip(n int) int {
	rem := len(s.insts) - s.pos
	if n > rem {
		n = rem
	}
	if n < 0 {
		n = 0
	}
	s.pos += n
	return n
}

// SkipWarm implements WarmSkipper over the backing slice without
// advancing through the Source interface.
func (s *SliceSource) SkipWarm(n int, w Warmer) int {
	bw, hasBW := w.(BranchWarmer)
	n = s.Skip(n)
	lastLine, lineValid := uint64(0), false
	for i := s.pos - n; i < s.pos; i++ {
		in := &s.insts[i]
		if la := in.LineAddr(); !lineValid || la != lastLine {
			lastLine, lineValid = la, true
			w.WarmFetch(la)
		}
		switch in.Class {
		case isa.Load, isa.Store:
			w.WarmMem(in.MemAddr)
		case isa.CondBranch:
			if hasBW {
				bw.WarmCond(in.PC, in.Taken)
			}
		}
	}
	return n
}

// Skip implements Skipper: it truncates the request to the remaining
// budget and delegates to the wrapped source (via its own fast path
// when it has one).
func (l *Limit) Skip(n int) int {
	if n < 0 {
		n = 0
	}
	if rem := l.n - l.seen; n > rem {
		n = rem
	}
	skipped := SkipN(l.src, n)
	l.seen += skipped
	return skipped
}

// SkipWarm implements WarmSkipper with the same budget truncation as
// Skip.
func (l *Limit) SkipWarm(n int, w Warmer) int {
	if n < 0 {
		n = 0
	}
	if rem := l.n - l.seen; n > rem {
		n = rem
	}
	skipped := SkipWarmN(l.src, n, w)
	l.seen += skipped
	return skipped
}

// Warmer receives the cache-state-carrying side effects of instructions
// passed over by a warming skip: the fetch-line sequence and every
// load/store effective address. The base interface carries no
// control-flow information — the warming skip keeps cache and TLB
// residency current, and target-carrying structures (BTB, ITTAGE, µ-op
// cache) retrain during the functional and detailed warm segments that
// follow a skip. A warmer that additionally implements BranchWarmer
// also receives conditional branch outcomes.
type Warmer interface {
	// WarmFetch observes one fetch-line crossing: lineAddr is the
	// 64-byte-aligned line address the instruction stream moved onto.
	WarmFetch(lineAddr uint64)
	// WarmMem observes one load or store effective address.
	WarmMem(addr uint64)
}

// BranchWarmer is an optional Warmer extension: a warmer that also
// implements it receives every conditional branch outcome crossed by
// the skip. Direction-predictor accuracy converges over tens of
// millions of instructions, far slower than cache residency, so a
// sampled run that stops training during skips measures a predictor
// biased early; the walker computes every outcome anyway to stay
// control-flow consistent, making continuous training nearly free.
type BranchWarmer interface {
	// WarmCond observes one conditional branch outcome.
	WarmCond(pc uint64, taken bool)
}

// WarmSkipper is a Source that can skip while reporting the skipped
// instructions' memory footprint to a Warmer, without materializing
// isa.Inst values. This is the sampled simulator's light fast-forward
// tier: far cheaper than the functional-commit path, while keeping the
// large, slow-to-warm structures (caches, TLBs, direction predictor)
// hot across the gap.
type WarmSkipper interface {
	Source
	// SkipWarm advances past up to n instructions, reporting fetch-line
	// crossings and memory addresses to w (which must be non-nil), and
	// returns how many instructions were skipped.
	SkipWarm(n int, w Warmer) int
}

// SkipWarmN fast-forwards src by up to n instructions, reporting the
// skipped footprint to w (non-nil). It uses the native SkipWarm fast
// path when the source provides one and otherwise materializes
// instructions via Next. It returns the number actually skipped, short
// only at end of stream.
func SkipWarmN(src Source, n int, w Warmer) int {
	if s, ok := src.(WarmSkipper); ok {
		return s.SkipWarm(n, w)
	}
	bw, hasBW := w.(BranchWarmer)
	lastLine, lineValid := uint64(0), false
	for i := 0; i < n; i++ {
		in, ok := src.Next()
		if !ok {
			return i
		}
		if la := in.LineAddr(); !lineValid || la != lastLine {
			lastLine, lineValid = la, true
			w.WarmFetch(la)
		}
		switch in.Class {
		case isa.Load, isa.Store:
			w.WarmMem(in.MemAddr)
		case isa.CondBranch:
			if hasBW {
				bw.WarmCond(in.PC, in.Taken)
			}
		}
	}
	return n
}

// Skip implements Skipper. A Walker's stream state (program counter,
// call stack, global history, per-site branch and memory state, and the
// behavior RNG) advances exactly as it would under Next — the state
// maintenance is inherent to control-flow consistency — but the
// architectural isa.Inst values are never materialized or delivered.
// The stream is endless, so Skip always skips the full n.
func (w *Walker) Skip(n int) int { return w.SkipWarm(n, nil) }

// SkipWarm implements WarmSkipper natively: the same state machine as
// Skip, additionally reporting fetch-line crossings and memory
// effective addresses to wm. A nil wm is tolerated here (Skip delegates
// with one) and skips the reporting entirely.
func (w *Walker) SkipWarm(n int, wm Warmer) int {
	var bw BranchWarmer
	if wm != nil {
		bw, _ = wm.(BranchWarmer)
	}
	lastLine, lineValid := uint64(0), false
	for i := 0; i < n; i++ {
		idx := int((w.pc - CodeBase) / isa.InstBytes)
		si := &w.prog.Code[idx]
		if wm != nil {
			if la := w.pc &^ uint64(isa.LineBytes-1); !lineValid || la != lastLine {
				lastLine, lineValid = la, true
				wm.WarmFetch(la)
			}
		}
		next := w.pc + isa.InstBytes
		switch si.Class {
		case isa.CondBranch:
			b := &w.prog.behaviors[si.behav]
			taken := w.evalCond(b, &w.st[si.behav])
			w.ghist = w.ghist<<1 | b2u(taken)
			if bw != nil {
				bw.WarmCond(w.pc, taken)
			}
			if taken {
				next = si.Target
			}
		case isa.DirectJump:
			next = si.Target
		case isa.Call:
			w.stack = append(w.stack, next)
			next = si.Target
		case isa.IndirectJump, isa.IndirectCall:
			b := &w.prog.behaviors[si.behav]
			if si.Class == isa.IndirectCall {
				w.stack = append(w.stack, next)
			}
			next = w.evalIndirect(b)
		case isa.Return:
			if ln := len(w.stack); ln > 0 {
				next = w.stack[ln-1]
				w.stack = w.stack[:ln-1]
			} else {
				next = w.prog.Entry
			}
		case isa.Load, isa.Store:
			addr := w.memAddr(si, idx)
			if wm != nil {
				wm.WarmMem(addr)
			}
		}
		w.pc = next
	}
	return n
}

// Scalar hides a source's batch (and any other) fast paths behind a
// plain scalar Source, while still exposing Skip. The sampled
// simulation mode wraps its trace in a Scalar so the frontend's batched
// read-ahead cannot advance the stream past the architectural commit
// point — the fast-forward controller and the detailed engine must
// observe one shared stream position.
type Scalar struct {
	src Source
}

// NewScalar wraps src, hiding every optional fast path except Skip.
func NewScalar(src Source) *Scalar { return &Scalar{src: src} }

// Next implements Source.
func (s *Scalar) Next() (isa.Inst, bool) { return s.src.Next() }

// Reset implements Source.
func (s *Scalar) Reset() { s.src.Reset() }

// Skip implements Skipper by delegating to the wrapped source's fast
// path when it has one.
func (s *Scalar) Skip(n int) int { return SkipN(s.src, n) }

// SkipWarm implements WarmSkipper by delegating to the wrapped source's
// fast path when it has one. Skip fast paths stay exposed — they
// advance the shared position from the controller's side, unlike the
// batch read-ahead this wrapper exists to hide.
func (s *Scalar) SkipWarm(n int, w Warmer) int { return SkipWarmN(s.src, n, w) }
