package trace

// Property tests for the Skipper contract: Skip(n) followed by Next must
// observe exactly what n discarded Next calls followed by Next would —
// for every implementation, including native fast paths (SliceSource,
// Walker) and the generic SkipN fallback, across Limit truncation
// boundaries.

import (
	"testing"

	"ucp/internal/isa"
	"ucp/internal/rng"
)

// skipThenDrain skips n and then collects up to max instructions.
func skipThenDrain(src Source, n, max int) (int, []isa.Inst) {
	skipped := SkipN(src, n)
	return skipped, drainScalar(src, max)
}

func TestSkipMatchesNext(t *testing.T) {
	insts := genInsts(257, 7)

	makeSources := map[string]func(limit int) (Source, Source){
		"slice": func(int) (Source, Source) {
			return NewSliceSource(insts), NewSliceSource(insts)
		},
		"scalar-wrapper": func(int) (Source, Source) {
			return NewScalar(NewSliceSource(insts)), NewScalar(NewSliceSource(insts))
		},
		"fallback-next-loop": func(int) (Source, Source) {
			return scalarOnly{NewSliceSource(insts)}, scalarOnly{NewSliceSource(insts)}
		},
		"limit-over-slice": func(limit int) (Source, Source) {
			return NewLimit(NewSliceSource(insts), limit),
				NewLimit(NewSliceSource(insts), limit)
		},
		"limit-over-scalar": func(limit int) (Source, Source) {
			return NewLimit(scalarOnly{NewSliceSource(insts)}, limit),
				NewLimit(scalarOnly{NewSliceSource(insts)}, limit)
		},
	}
	// Skips and limits straddle every truncation boundary: shorter than,
	// equal to, and beyond both the stream and the limit.
	for name, mk := range makeSources {
		for _, limit := range []int{0, 1, 100, 256, 257, 1000} {
			for _, n := range []int{0, 1, 99, 100, 101, 256, 257, 300} {
				ref, sut := mk(limit)
				// Reference: n Next calls discarded, then drain.
				refSkipped := 0
				for i := 0; i < n; i++ {
					if _, ok := ref.Next(); !ok {
						break
					}
					refSkipped++
				}
				want := drainScalar(ref, 100000)
				gotSkipped, got := skipThenDrain(sut, n, 100000)
				if gotSkipped != refSkipped {
					t.Fatalf("%s limit=%d skip=%d: Skip returned %d, want %d",
						name, limit, n, gotSkipped, refSkipped)
				}
				if !sameInsts(want, got) {
					t.Fatalf("%s limit=%d skip=%d: post-skip stream diverges (%d vs %d insts)",
						name, limit, n, len(got), len(want))
				}
			}
		}
	}
}

// TestSkipMatchesNextWalker pins the Walker's native Skip against its
// Next path: all generator state (RNG, histories, call stack, memory
// strides) must advance identically, so the instructions emitted after a
// skip are byte-identical to those after discarding the same prefix.
func TestSkipMatchesNextWalker(t *testing.T) {
	prog, err := BuildProgram(QuickProfiles()[0])
	if err != nil {
		t.Fatal(err)
	}
	const tail = 3000
	for _, n := range []int{0, 1, 997, 5000} {
		ref := NewWalker(prog)
		for i := 0; i < n; i++ {
			if _, ok := ref.Next(); !ok {
				t.Fatalf("walker ended at %d", i)
			}
		}
		want := drainScalar(ref, tail)

		sut := NewWalker(prog)
		if got := SkipN(sut, n); got != n {
			t.Fatalf("walker Skip(%d) returned %d", n, got)
		}
		if got := drainScalar(sut, tail); !sameInsts(want, got) {
			t.Fatalf("walker stream diverges after Skip(%d)", n)
		}
	}

	// Limit over the endless walker: skipping across the truncation
	// boundary must clamp exactly.
	lim := NewLimit(NewWalker(prog), 500)
	if got := SkipN(lim, 400); got != 400 {
		t.Fatalf("Limit(walker).Skip(400) = %d", got)
	}
	if rest := drainScalar(lim, 100000); len(rest) != 100 {
		t.Fatalf("after Skip(400) a 500-limit yields %d insts, want 100", len(rest))
	}
	if got := SkipN(lim, 10); got != 0 {
		t.Fatalf("exhausted limit skipped %d insts", got)
	}
}

// warmEvent records one Warmer callback for sequence comparison.
type warmEvent struct {
	kind  byte // 'F' fetch line, 'M' memory address, 'C' cond outcome
	addr  uint64
	taken bool
}

// warmRec is a plain Warmer (no BranchWarmer): cond outcomes must not
// be reported to it.
type warmRec struct{ events []warmEvent }

func (r *warmRec) WarmFetch(la uint64) { r.events = append(r.events, warmEvent{'F', la, false}) }
func (r *warmRec) WarmMem(a uint64)    { r.events = append(r.events, warmEvent{'M', a, false}) }

// condRec additionally implements BranchWarmer.
type condRec struct{ warmRec }

func (r *condRec) WarmCond(pc uint64, taken bool) {
	r.events = append(r.events, warmEvent{'C', pc, taken})
}

func sameEvents(a, b []warmEvent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// genWarmInsts mixes in loads/stores (with effective addresses) so the
// warm callbacks have something to report.
func genWarmInsts(n int, seed uint64) []isa.Inst {
	r := rng.New(seed)
	out := make([]isa.Inst, n)
	pc := uint64(0x4000)
	for i := range out {
		cl := isa.ALU
		switch {
		case r.Bool(0.2):
			cl = isa.CondBranch
		case r.Bool(0.3):
			cl = isa.Load
		case r.Bool(0.2):
			cl = isa.Store
		}
		out[i] = isa.Inst{PC: pc, Class: cl, Taken: r.Bool(0.5), MemAddr: 0x10_0000 + r.Uint64n(1<<16)}
		pc += isa.InstBytes
	}
	return out
}

// TestSkipWarmMatchesSkip pins the WarmSkipper position contract: after
// SkipWarm(n, w) the stream must be exactly where Skip(n) leaves it,
// for native implementations and the SkipWarmN fallback alike.
func TestSkipWarmMatchesSkip(t *testing.T) {
	insts := genWarmInsts(257, 3)
	makeSources := map[string]func(limit int) (Source, Source){
		"slice": func(int) (Source, Source) {
			return NewSliceSource(insts), NewSliceSource(insts)
		},
		"scalar-wrapper": func(int) (Source, Source) {
			return NewScalar(NewSliceSource(insts)), NewScalar(NewSliceSource(insts))
		},
		"fallback-next-loop": func(int) (Source, Source) {
			return scalarOnly{NewSliceSource(insts)}, scalarOnly{NewSliceSource(insts)}
		},
		"limit-over-slice": func(limit int) (Source, Source) {
			return NewLimit(NewSliceSource(insts), limit),
				NewLimit(NewSliceSource(insts), limit)
		},
		"limit-over-fallback": func(limit int) (Source, Source) {
			return NewLimit(scalarOnly{NewSliceSource(insts)}, limit),
				NewLimit(scalarOnly{NewSliceSource(insts)}, limit)
		},
	}
	for name, mk := range makeSources {
		for _, limit := range []int{0, 100, 257, 1000} {
			for _, n := range []int{0, 1, 99, 256, 257, 300} {
				ref, sut := mk(limit)
				refSkipped := SkipN(ref, n)
				want := drainScalar(ref, 100000)
				var rec condRec
				gotSkipped := SkipWarmN(sut, n, &rec)
				if gotSkipped != refSkipped {
					t.Fatalf("%s limit=%d n=%d: SkipWarm skipped %d, Skip skipped %d",
						name, limit, n, gotSkipped, refSkipped)
				}
				if got := drainScalar(sut, 100000); !sameInsts(want, got) {
					t.Fatalf("%s limit=%d n=%d: post-SkipWarm stream diverges", name, limit, n)
				}
			}
		}
	}
}

// TestSkipWarmCallbackParity pins the warm callback sequence: native
// SkipWarm fast paths must report exactly the events the generic
// Next-materializing fallback reports, in the same order, and a warmer
// without BranchWarmer must see no cond events.
func TestSkipWarmCallbackParity(t *testing.T) {
	insts := genWarmInsts(512, 9)
	for _, n := range []int{0, 1, 100, 512} {
		var want condRec
		SkipWarmN(scalarOnly{NewSliceSource(insts)}, n, &want)

		natives := map[string]Source{
			"slice":            NewSliceSource(insts),
			"scalar-wrapper":   NewScalar(NewSliceSource(insts)),
			"limit-over-slice": NewLimit(NewSliceSource(insts), 100000),
		}
		for name, src := range natives {
			var got condRec
			SkipWarmN(src, n, &got)
			if !sameEvents(want.events, got.events) {
				t.Fatalf("%s n=%d: warm event sequence diverges from fallback (%d vs %d events)",
					name, n, len(got.events), len(want.events))
			}
		}

		// Plain Warmer: identical fetch/mem sequence, no cond events.
		var plain warmRec
		SkipWarmN(NewSliceSource(insts), n, &plain)
		var wantPlain []warmEvent
		for _, e := range want.events {
			if e.kind != 'C' {
				wantPlain = append(wantPlain, e)
			}
		}
		if !sameEvents(wantPlain, plain.events) {
			t.Fatalf("n=%d: plain-Warmer sequence should be the cond-free subsequence", n)
		}
	}
}

// TestSkipWarmWalkerParity pins the Walker's native SkipWarm against
// materializing the same prefix via Next: identical warm events and an
// identical stream afterwards (generator state advanced identically).
func TestSkipWarmWalkerParity(t *testing.T) {
	prog, err := BuildProgram(QuickProfiles()[0])
	if err != nil {
		t.Fatal(err)
	}
	const tail = 2000
	for _, n := range []int{0, 1, 997, 5000} {
		var want condRec
		ref := scalarOnly{NewWalker(prog)}
		if got := SkipWarmN(ref, n, &want); got != n {
			t.Fatalf("fallback SkipWarmN(%d) over walker = %d", n, got)
		}
		wantTail := drainScalar(ref, tail)

		var rec condRec
		sut := NewWalker(prog)
		if got := sut.SkipWarm(n, &rec); got != n {
			t.Fatalf("walker SkipWarm(%d) = %d", n, got)
		}
		if !sameEvents(want.events, rec.events) {
			t.Fatalf("walker SkipWarm(%d): warm event sequence diverges (%d vs %d events)",
				n, len(rec.events), len(want.events))
		}
		if got := drainScalar(sut, tail); !sameInsts(wantTail, got) {
			t.Fatalf("walker stream diverges after SkipWarm(%d)", n)
		}
	}
}

// The Scalar wrapper exists to hide batch fast paths: if it ever gains a
// NextBatch method the sampled mode's shared-stream-position invariant
// silently breaks, so pin the absence at compile time.
var _ Source = (*Scalar)(nil)
var _ Skipper = (*Scalar)(nil)
var _ WarmSkipper = (*Scalar)(nil)
var _ WarmSkipper = (*SliceSource)(nil)
var _ WarmSkipper = (*Limit)(nil)
var _ WarmSkipper = (*Walker)(nil)

func TestScalarHidesBatchPath(t *testing.T) {
	var src Source = NewScalar(NewSliceSource(genInsts(8, 1)))
	if _, ok := src.(BatchSource); ok {
		t.Fatal("trace.Scalar satisfies BatchSource; it exists to hide exactly that fast path")
	}
}
