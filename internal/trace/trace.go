// Package trace defines the dynamic instruction trace model that drives
// the simulator, plus a synthetic workload generator that stands in for
// the proprietary CVP-1 Qualcomm datacenter traces used by the paper
// (see DESIGN.md, "Substitutions").
//
// A trace is a stream of isa.Inst values forming a consistent dynamic
// control-flow path: instruction i+1 always starts at instruction i's
// architectural next PC.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ucp/internal/isa"
)

// Source produces a stream of dynamic instructions. Implementations are
// not safe for concurrent use.
type Source interface {
	// Next returns the next instruction, or ok=false at end of stream.
	Next() (in isa.Inst, ok bool)
	// Reset rewinds the source to the beginning of the stream.
	Reset()
}

// BatchSource is an optional Source fast path: consumers that would
// call Next in a tight loop may pull many instructions per interface
// dispatch instead. Implementations must yield exactly the sequence
// Next would — NextBatch followed by Next (or vice versa) observes one
// stream with no gaps, duplicates, or reordering.
type BatchSource interface {
	Source
	// NextBatch fills dst from the front and returns the number of
	// instructions written. It returns 0 only when the stream is
	// exhausted (or dst is empty); short counts are otherwise allowed.
	NextBatch(dst []isa.Inst) int
}

// NextBatch implements BatchSource by copying from the backing slice.
func (s *SliceSource) NextBatch(dst []isa.Inst) int {
	n := copy(dst, s.insts[s.pos:])
	s.pos += n
	return n
}

// NextBatch implements BatchSource: it truncates dst to the remaining
// budget and delegates to the wrapped source's batch path when it has
// one, falling back to a scalar drain otherwise.
func (l *Limit) NextBatch(dst []isa.Inst) int {
	if l.seen >= l.n {
		return 0
	}
	if rem := l.n - l.seen; len(dst) > rem {
		dst = dst[:rem]
	}
	n := 0
	if bs, ok := l.src.(BatchSource); ok {
		n = bs.NextBatch(dst)
	} else {
		for n < len(dst) {
			in, ok := l.src.Next()
			if !ok {
				break
			}
			dst[n] = in
			n++
		}
	}
	l.seen += n
	return n
}

// SliceSource serves instructions from an in-memory slice.
type SliceSource struct {
	insts []isa.Inst
	pos   int
}

// NewSliceSource returns a Source over the given instructions.
func NewSliceSource(insts []isa.Inst) *SliceSource {
	return &SliceSource{insts: insts}
}

// Next implements Source.
func (s *SliceSource) Next() (isa.Inst, bool) {
	if s.pos >= len(s.insts) {
		return isa.Inst{}, false
	}
	in := s.insts[s.pos]
	s.pos++
	return in, true
}

// Reset implements Source.
func (s *SliceSource) Reset() { s.pos = 0 }

// Limit wraps a source, truncating it after n instructions.
type Limit struct {
	src  Source
	n    int
	seen int
}

// NewLimit returns a Source that yields at most n instructions from src.
func NewLimit(src Source, n int) *Limit { return &Limit{src: src, n: n} }

// Next implements Source.
func (l *Limit) Next() (isa.Inst, bool) {
	if l.seen >= l.n {
		return isa.Inst{}, false
	}
	in, ok := l.src.Next()
	if ok {
		l.seen++
	}
	return in, ok
}

// Reset implements Source.
func (l *Limit) Reset() {
	l.src.Reset()
	l.seen = 0
}

// Collect drains up to n instructions from src into a slice.
func Collect(src Source, n int) []isa.Inst {
	out := make([]isa.Inst, 0, n)
	for len(out) < n {
		in, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, in)
	}
	return out
}

// Validate checks dynamic control-flow consistency: each instruction must
// begin at the previous instruction's architectural next PC, PCs must be
// 4-byte aligned, and taken branches must carry a target. It returns the
// index of the first violation.
func Validate(insts []isa.Inst) error {
	for i := range insts {
		in := &insts[i]
		if in.PC%isa.InstBytes != 0 {
			return fmt.Errorf("inst %d: misaligned PC %#x", i, in.PC)
		}
		if in.Taken && !in.Class.IsBranch() {
			return fmt.Errorf("inst %d: non-branch marked taken", i)
		}
		if in.Class.IsUncondTaken() && !in.Taken {
			return fmt.Errorf("inst %d: unconditional branch not taken", i)
		}
		if i > 0 {
			prev := &insts[i-1]
			if want := prev.NextPC(); in.PC != want {
				return fmt.Errorf("inst %d: PC %#x, want %#x (after %v at %#x taken=%v)",
					i, in.PC, want, prev.Class, prev.PC, prev.Taken)
			}
		}
	}
	return nil
}

const (
	fileMagic   = "UCPT"
	fileVersion = 1
)

// Write serializes instructions to w in the repository's compact binary
// trace format (magic, version, count, then fixed-width records).
func Write(w io.Writer, insts []isa.Inst) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:4], fileVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(insts)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	rec := make([]byte, 29)
	for i := range insts {
		in := &insts[i]
		binary.LittleEndian.PutUint64(rec[0:8], in.PC)
		rec[8] = byte(in.Class)
		if in.Taken {
			rec[9] = 1
		} else {
			rec[9] = 0
		}
		binary.LittleEndian.PutUint64(rec[10:18], in.Target)
		binary.LittleEndian.PutUint64(rec[18:26], in.MemAddr)
		rec[26] = in.Dst
		rec[27] = in.Src1
		rec[28] = in.Src2
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a trace previously written by Write or
// WriteCompact (it dispatches on the header version).
func Read(r io.Reader) ([]isa.Inst, error) {
	return ReadAny(r)
}
