package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"ucp/internal/isa"
)

func TestSliceSource(t *testing.T) {
	insts := []isa.Inst{{PC: 4}, {PC: 8}, {PC: 12}}
	s := NewSliceSource(insts)
	for i := 0; i < 2; i++ { // two passes, with a Reset in between
		for j, want := range insts {
			in, ok := s.Next()
			if !ok || in.PC != want.PC {
				t.Fatalf("pass %d inst %d: got %#x ok=%v", i, j, in.PC, ok)
			}
		}
		if _, ok := s.Next(); ok {
			t.Fatal("expected end of stream")
		}
		s.Reset()
	}
}

func TestLimit(t *testing.T) {
	prog := mustProgram(t, QuickProfiles()[0])
	src := NewLimit(NewWalker(prog), 100)
	n := 0
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 100 {
		t.Fatalf("Limit yielded %d, want 100", n)
	}
	src.Reset()
	if _, ok := src.Next(); !ok {
		t.Fatal("Reset did not rewind Limit")
	}
}

func mustProgram(t *testing.T, p Profile) *Program {
	t.Helper()
	prog, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestBuildProgramRejectsBadProfile(t *testing.T) {
	if _, err := BuildProgram(Profile{Name: "bad"}); err == nil {
		t.Fatal("expected error for empty profile")
	}
}

func TestWalkerControlFlowConsistency(t *testing.T) {
	for _, p := range DefaultProfiles() {
		prog := mustProgram(t, p)
		insts := Collect(NewWalker(prog), 50000)
		if len(insts) != 50000 {
			t.Fatalf("%s: walker ended early (%d)", p.Name, len(insts))
		}
		if err := Validate(insts); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
}

func TestWalkerDeterminism(t *testing.T) {
	p := QuickProfiles()[1]
	prog := mustProgram(t, p)
	a := Collect(NewWalker(prog), 20000)
	b := Collect(NewWalker(prog), 20000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("walkers diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Reset must reproduce the stream exactly.
	w := NewWalker(prog)
	_ = Collect(w, 5000)
	w.Reset()
	c := Collect(w, 20000)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("Reset stream diverged at %d", i)
		}
	}
}

func TestWalkerPCsWithinImage(t *testing.T) {
	prog := mustProgram(t, QuickProfiles()[0])
	limit := CodeBase + uint64(len(prog.Code))*isa.InstBytes
	w := NewWalker(prog)
	for i := 0; i < 30000; i++ {
		in, _ := w.Next()
		if in.PC < CodeBase || in.PC >= limit {
			t.Fatalf("inst %d PC %#x outside image [%#x,%#x)", i, in.PC, CodeBase, limit)
		}
	}
}

func TestFootprintMatchesProfile(t *testing.T) {
	for _, p := range DefaultProfiles() {
		prog := mustProgram(t, p)
		got := uint64(len(prog.Code)) * isa.InstBytes
		want := p.FootprintBytes()
		// The builder targets the profile footprint within a loose band;
		// construct granularity makes it overshoot somewhat.
		if got < want/2 || got > want*3 {
			t.Errorf("%s: footprint %d bytes, profile target %d", p.Name, got, want)
		}
	}
}

func TestBranchMixSane(t *testing.T) {
	for _, p := range DefaultProfiles() {
		prog := mustProgram(t, p)
		insts := Collect(NewWalker(prog), 100000)
		var branches, cond, calls, rets int
		for i := range insts {
			c := insts[i].Class
			if c.IsBranch() {
				branches++
			}
			if c.IsConditional() {
				cond++
			}
			if c.IsCall() {
				calls++
			}
			if c == isa.Return {
				rets++
			}
		}
		bf := float64(branches) / float64(len(insts))
		if bf < 0.05 || bf > 0.40 {
			t.Errorf("%s: branch fraction %.3f outside [0.05,0.40]", p.Name, bf)
		}
		if cond == 0 || calls == 0 || rets == 0 {
			t.Errorf("%s: missing branch classes cond=%d calls=%d rets=%d", p.Name, cond, calls, rets)
		}
		// Calls and returns must roughly balance on a long run.
		if diff := calls - rets; diff < -50 || diff > 50 {
			t.Errorf("%s: call/return imbalance %d", p.Name, diff)
		}
	}
}

func TestH2PBranchesExist(t *testing.T) {
	// A datacenter profile must contain conditional branches that flip
	// directions frequently (the H2P population UCP targets).
	prog := mustProgram(t, QuickProfiles()[3]) // srv206
	insts := Collect(NewWalker(prog), 200000)
	taken := map[uint64][2]int{}
	for i := range insts {
		if insts[i].Class.IsConditional() {
			c := taken[insts[i].PC]
			if insts[i].Taken {
				c[1]++
			} else {
				c[0]++
			}
			taken[insts[i].PC] = c
		}
	}
	noisy := 0
	for _, c := range taken {
		tot := c[0] + c[1]
		if tot < 30 {
			continue
		}
		r := float64(c[1]) / float64(tot)
		if r > 0.2 && r < 0.8 {
			noisy++
		}
	}
	if noisy < 5 {
		t.Fatalf("only %d noisy conditional branch sites; H2P population too small", noisy)
	}
}

func TestMemAddressesWithinWSS(t *testing.T) {
	p := QuickProfiles()[0]
	prog := mustProgram(t, p)
	w := NewWalker(prog)
	for i := 0; i < 50000; i++ {
		in, _ := w.Next()
		if in.Class != isa.Load && in.Class != isa.Store {
			continue
		}
		heap := in.MemAddr >= 1<<32 && in.MemAddr < (1<<32)+p.DataWSS+64*1024
		stack := in.MemAddr >= stackBase
		if !heap && !stack {
			t.Fatalf("mem address %#x outside heap/stack windows", in.MemAddr)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	prog := mustProgram(t, QuickProfiles()[0])
	insts := Collect(NewWalker(prog), 5000)
	var buf bytes.Buffer
	if err := Write(&buf, insts); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(insts) {
		t.Fatalf("round trip length %d != %d", len(got), len(insts))
	}
	for i := range insts {
		if got[i] != insts[i] {
			t.Fatalf("round trip mismatch at %d: %+v vs %+v", i, got[i], insts[i])
		}
	}
}

func TestReadRejectsCorruptHeader(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE00000000"))); err == nil {
		t.Fatal("expected error for bad magic")
	}
	var buf bytes.Buffer
	_ = Write(&buf, []isa.Inst{{PC: 4}})
	b := buf.Bytes()
	if _, err := Read(bytes.NewReader(b[:len(b)-3])); err == nil {
		t.Fatal("expected error for truncated record")
	}
}

func TestValidateCatchesBrokenChain(t *testing.T) {
	good := []isa.Inst{
		{PC: 0x1000, Class: isa.ALU},
		{PC: 0x1004, Class: isa.CondBranch, Taken: true, Target: 0x2000},
		{PC: 0x2000, Class: isa.ALU},
	}
	if err := Validate(good); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	bad := []isa.Inst{
		{PC: 0x1000, Class: isa.ALU},
		{PC: 0x2000, Class: isa.ALU},
	}
	if err := Validate(bad); err == nil {
		t.Fatal("broken chain accepted")
	}
	misaligned := []isa.Inst{{PC: 0x1001, Class: isa.ALU}}
	if err := Validate(misaligned); err == nil {
		t.Fatal("misaligned PC accepted")
	}
	notTakenJump := []isa.Inst{{PC: 0x1000, Class: isa.DirectJump, Taken: false}}
	if err := Validate(notTakenJump); err == nil {
		t.Fatal("not-taken unconditional accepted")
	}
}

func TestValidateProperty(t *testing.T) {
	// Any prefix of a generated stream must validate.
	prog := mustProgram(t, QuickProfiles()[2])
	insts := Collect(NewWalker(prog), 30000)
	if err := quick.Check(func(a, b uint16) bool {
		lo, hi := int(a)%len(insts), int(b)%len(insts)
		if lo > hi {
			lo, hi = hi, lo
		}
		return Validate(insts[lo:hi]) == nil
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileByName(t *testing.T) {
	if _, ok := ProfileByName("srv203"); !ok {
		t.Fatal("srv203 must exist")
	}
	if _, ok := ProfileByName("nonexistent"); ok {
		t.Fatal("nonexistent profile found")
	}
}

func TestQuickProfiles(t *testing.T) {
	qs := QuickProfiles()
	if len(qs) != 4 {
		t.Fatalf("QuickProfiles returned %d, want 4", len(qs))
	}
}

func BenchmarkWalker(b *testing.B) {
	prog, err := BuildProgram(QuickProfiles()[2])
	if err != nil {
		b.Fatal(err)
	}
	w := NewWalker(prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Next()
	}
}

// semanticallyEqual compares instructions ignoring the target of
// not-taken branches (not serialized by the compact format; never
// consumed by the simulator).
func semanticallyEqual(a, b isa.Inst) bool {
	if !a.Taken {
		a.Target, b.Target = 0, 0
	}
	return a == b
}

func TestCompactRoundTrip(t *testing.T) {
	for _, p := range QuickProfiles() {
		prog := mustProgram(t, p)
		insts := Collect(NewWalker(prog), 20000)
		var buf bytes.Buffer
		if err := WriteCompact(&buf, insts); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if len(got) != len(insts) {
			t.Fatalf("%s: length %d != %d", p.Name, len(got), len(insts))
		}
		for i := range insts {
			if !semanticallyEqual(got[i], insts[i]) {
				t.Fatalf("%s: record %d: %+v vs %+v", p.Name, i, got[i], insts[i])
			}
		}
	}
}

func TestCompactSmallerThanV1(t *testing.T) {
	prog := mustProgram(t, QuickProfiles()[2])
	insts := Collect(NewWalker(prog), 50000)
	var v1, v2 bytes.Buffer
	if err := Write(&v1, insts); err != nil {
		t.Fatal(err)
	}
	if err := WriteCompact(&v2, insts); err != nil {
		t.Fatal(err)
	}
	ratio := float64(v2.Len()) / float64(v1.Len())
	if ratio > 0.4 {
		t.Fatalf("compact format only %.2fx of v1 (%d vs %d bytes)", ratio, v2.Len(), v1.Len())
	}
	t.Logf("compact: %.1f%% of v1 (%.1f bytes/inst)", ratio*100, float64(v2.Len())/float64(len(insts)))
}

func TestCompactRejectsCorruption(t *testing.T) {
	prog := mustProgram(t, QuickProfiles()[0])
	insts := Collect(NewWalker(prog), 100)
	var buf bytes.Buffer
	if err := WriteCompact(&buf, insts); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := Read(bytes.NewReader(b[:len(b)-2])); err == nil {
		t.Fatal("truncated compact trace accepted")
	}
	// Unsupported version.
	bad := append([]byte(nil), b...)
	bad[4] = 99
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestBothFormatsReadable(t *testing.T) {
	prog := mustProgram(t, QuickProfiles()[0])
	insts := Collect(NewWalker(prog), 500)
	var v1, v2 bytes.Buffer
	_ = Write(&v1, insts)
	_ = WriteCompact(&v2, insts)
	a, err := Read(&v1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Read(&v2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !semanticallyEqual(a[i], b[i]) {
			t.Fatalf("formats disagree at %d", i)
		}
	}
}
