package uopcache

import "ucp/internal/isa"

// Builder accumulates a decoded µ-op stream into µ-op cache entries,
// applying the termination rules of §II/§III-A. It is used by both the
// demand-side build mode and UCP's alternate decode fill path.
type Builder struct {
	cache      *UopCache
	prefetched bool

	open     bool
	startPC  uint64
	nextPC   uint64
	ops      uint8 // µ-ops accumulated so far. nbits:4
	branches uint8 // branch targets accumulated so far. nbits:2
}

// NewBuilder returns a builder inserting into cache; prefetched marks
// the produced entries as UCP fills.
func NewBuilder(cache *UopCache, prefetched bool) *Builder {
	return &Builder{cache: cache, prefetched: prefetched}
}

// Add appends one decoded instruction. predTaken is the direction the
// frontend predicts/observes for branches (false for non-branches): a
// predicted-taken branch terminates the entry.
func (b *Builder) Add(pc uint64, class isa.Class, predTaken bool) {
	if b.open {
		sameRegion := RegionOf(pc) == RegionOf(b.startPC)
		sequential := pc == b.nextPC
		if !sameRegion || !sequential || b.ops >= uint8(b.cache.cfg.OpsPerEntry) {
			b.Flush(false)
		} else if class.IsBranch() && int(b.branches) >= b.cache.cfg.MaxBranches {
			// A third branch target does not fit: close this entry and
			// start another one covering the same region (§III-A).
			b.Flush(false)
		}
	}
	if !b.open {
		b.open = true
		b.startPC = pc
		b.ops, b.branches = 0, 0
	}
	b.ops++
	b.nextPC = pc + isa.InstBytes
	if class.IsBranch() {
		b.branches++
	}
	if class.IsBranch() && predTaken {
		b.Flush(true)
	} else if b.ops >= uint8(b.cache.cfg.OpsPerEntry) {
		b.Flush(false)
	}
}

// Flush closes the open entry (if any) and inserts it.
func (b *Builder) Flush(endsTaken bool) {
	if !b.open || b.ops == 0 {
		b.open = false
		return
	}
	b.cache.Insert(b.startPC, b.ops, b.branches, endsTaken, b.prefetched)
	b.open = false
}
