package uopcache

import "ucp/internal/ckpt"

// Checkpoint hooks: the fast-forward's functional commit path feeds the
// demand entry builder, which inserts into the µ-op cache — so tags,
// LRU stamps, entry payloads, stats, and the builder's open-entry
// accumulator all carry across a checkpoint.

// SaveState serializes all mutable cache state.
func (u *UopCache) SaveState(w *ckpt.Writer) {
	w.Section("uopcache")
	w.U64s(u.tags)
	w.U64s(u.lrus)
	w.Uvarint(uint64(len(u.data)))
	for i := range u.data {
		e := &u.data[i]
		w.Byte(e.Ops)
		w.Byte(e.Branches)
		w.Bool(e.EndsTaken)
		w.Bool(e.Prefetched)
		w.Bool(e.Used)
	}
	w.Uvarint(u.clock)
	w.Uvarint(u.stats.Lookups)
	w.Uvarint(u.stats.Hits)
	w.Uvarint(u.stats.Inserts)
	w.Uvarint(u.stats.Evictions)
	w.Uvarint(u.stats.PrefetchInserts)
	w.Uvarint(u.stats.PrefetchUsed)
	w.Uvarint(u.stats.PrefetchEvictUnused)
	w.Uvarint(u.stats.Invalidations)
}

// LoadState restores state saved by SaveState into an identically
// configured cache. Errors surface on the reader.
func (u *UopCache) LoadState(r *ckpt.Reader) {
	r.Section("uopcache")
	r.U64sInto(u.tags)
	r.U64sInto(u.lrus)
	n := r.Uvarint()
	if r.Err() != nil {
		return
	}
	if n != uint64(len(u.data)) {
		r.Failf("uopcache: %d entries, want %d", n, len(u.data))
		return
	}
	for i := range u.data {
		e := &u.data[i]
		e.Ops = r.Byte()
		e.Branches = r.Byte()
		e.EndsTaken = r.Bool()
		e.Prefetched = r.Bool()
		e.Used = r.Bool()
	}
	u.clock = r.Uvarint()
	u.stats.Lookups = r.Uvarint()
	u.stats.Hits = r.Uvarint()
	u.stats.Inserts = r.Uvarint()
	u.stats.Evictions = r.Uvarint()
	u.stats.PrefetchInserts = r.Uvarint()
	u.stats.PrefetchUsed = r.Uvarint()
	u.stats.PrefetchEvictUnused = r.Uvarint()
	u.stats.Invalidations = r.Uvarint()
}

// SaveState serializes the builder's open-entry accumulator (the cache
// it inserts into is serialized separately).
func (b *Builder) SaveState(w *ckpt.Writer) {
	w.Section("uopbuilder")
	w.Bool(b.open)
	w.Uvarint(b.startPC)
	w.Uvarint(b.nextPC)
	w.Byte(b.ops)
	w.Byte(b.branches)
}

// LoadState restores state saved by SaveState.
func (b *Builder) LoadState(r *ckpt.Reader) {
	r.Section("uopbuilder")
	b.open = r.Bool()
	b.startPC = r.Uvarint()
	b.nextPC = r.Uvarint()
	b.ops = r.Byte()
	b.branches = r.Byte()
}
