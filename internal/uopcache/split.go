package uopcache

import "ucp/internal/isa"

// InstMeta is the decoded-instruction view the entry rules operate on.
type InstMeta struct {
	PC        uint64
	Class     isa.Class
	PredTaken bool
}

// EntrySpec describes one µ-op cache entry a consecutive instruction run
// maps to. Split and the Builder implement the same termination rules;
// Split is used where the caller needs the entry boundaries without
// inserting (demand lookups, UCP's alternate-path fill planning).
type EntrySpec struct {
	StartPC   uint64
	Ops       uint8
	Branches  uint8
	EndsTaken bool
}

// Split partitions a consecutive run of instructions into entry specs
// under cfg's termination rules. The run must follow fetch order:
// sequential PCs except immediately after a predicted-taken branch
// (which starts a new entry at the target).
func Split(insts []InstMeta, cfg Config) []EntrySpec {
	return SplitInto(nil, insts, cfg)
}

// SplitInto appends the entry specs for insts to dst and returns the
// extended slice. Callers on the cycle hot path pass a reused backing
// array (dst[:0]) so steady-state fill planning is allocation-free.
func SplitInto(dst []EntrySpec, insts []InstMeta, cfg Config) []EntrySpec {
	var cur EntrySpec
	open := false
	var nextPC, curRegion uint64
	maxOps := uint8(cfg.OpsPerEntry)
	maxBranches := uint8(cfg.MaxBranches)
	for i := range insts {
		in := &insts[i]
		isBranch := in.Class.IsBranch()
		if open {
			if in.PC != nextPC || RegionOf(in.PC) != curRegion || cur.Ops >= maxOps ||
				(isBranch && cur.Branches >= maxBranches) {
				cur.EndsTaken = false
				dst = append(dst, cur)
				open = false
			}
		}
		if !open {
			open = true
			cur = EntrySpec{StartPC: in.PC}
			curRegion = RegionOf(in.PC)
		}
		cur.Ops++
		nextPC = in.PC + isa.InstBytes
		if isBranch {
			cur.Branches++
		}
		if isBranch && in.PredTaken {
			cur.EndsTaken = true
			dst = append(dst, cur)
			open = false
		} else if cur.Ops >= maxOps {
			cur.EndsTaken = false
			dst = append(dst, cur)
			open = false
		}
	}
	if open && cur.Ops > 0 {
		cur.EndsTaken = false
		dst = append(dst, cur)
	}
	return dst
}
