package uopcache

import "ucp/internal/isa"

// InstMeta is the decoded-instruction view the entry rules operate on.
type InstMeta struct {
	PC        uint64
	Class     isa.Class
	PredTaken bool
}

// EntrySpec describes one µ-op cache entry a consecutive instruction run
// maps to. Split and the Builder implement the same termination rules;
// Split is used where the caller needs the entry boundaries without
// inserting (demand lookups, UCP's alternate-path fill planning).
type EntrySpec struct {
	StartPC   uint64
	Ops       uint8
	Branches  uint8
	EndsTaken bool
}

// Split partitions a consecutive run of instructions into entry specs
// under cfg's termination rules. The run must follow fetch order:
// sequential PCs except immediately after a predicted-taken branch
// (which starts a new entry at the target).
func Split(insts []InstMeta, cfg Config) []EntrySpec {
	var out []EntrySpec
	var cur EntrySpec
	open := false
	var nextPC uint64
	flush := func(endsTaken bool) {
		if open && cur.Ops > 0 {
			cur.EndsTaken = endsTaken
			out = append(out, cur)
		}
		open = false
	}
	for i := range insts {
		in := &insts[i]
		if open {
			sameRegion := RegionOf(in.PC) == RegionOf(cur.StartPC)
			sequential := in.PC == nextPC
			switch {
			case !sameRegion || !sequential || cur.Ops >= uint8(cfg.OpsPerEntry):
				flush(false)
			case in.Class.IsBranch() && int(cur.Branches) >= cfg.MaxBranches:
				flush(false)
			}
		}
		if !open {
			open = true
			cur = EntrySpec{StartPC: in.PC}
		}
		cur.Ops++
		nextPC = in.PC + isa.InstBytes
		if in.Class.IsBranch() {
			cur.Branches++
		}
		if in.Class.IsBranch() && in.PredTaken {
			flush(true)
		} else if cur.Ops >= uint8(cfg.OpsPerEntry) {
			flush(false)
		}
	}
	flush(false)
	return out
}
