// Package uopcache implements the µ-op cache (decoded stream buffer) at
// the heart of the paper. Entries follow the termination rules of §II
// and §III-A: one entry covers up to 8 µ-ops within a 32-byte aligned
// code region, ends at a predicted-taken branch or at the region
// boundary, and holds at most two branch targets; if a third branch is
// needed, a new entry for the same region goes into another way of the
// same set. The structure is physically tagged and not inclusive of the
// L1I (§IV-G2), and its tag array is even/odd set-interleaved into two
// banks so demand and alternate-path tag checks can proceed in parallel
// (§IV-D).
package uopcache

import (
	"fmt"

	"ucp/internal/isa"
)

// Config sizes the µ-op cache.
//
//ucplint:config
type Config struct {
	// Ops is the total µ-op capacity (4096 = "4Kops" baseline).
	Ops int
	// OpsPerEntry is the entry width (8 in the paper's ARM model).
	OpsPerEntry int
	// Ways is the set associativity.
	Ways int
	// MaxBranches is the branch-target budget per entry.
	MaxBranches int
	// Banks is the number of tag-check banks (2 in UCP).
	Banks int
}

// DefaultConfig is the paper's baseline 4Kops geometry (Table II):
// 64 sets × 8 ways × 8 µ-ops.
func DefaultConfig() Config {
	return Config{Ops: 4096, OpsPerEntry: 8, Ways: 8, MaxBranches: 2, Banks: 2}
}

// ConfigOps returns the baseline geometry scaled to a total capacity
// (used by the Fig. 4 size sweep).
func ConfigOps(ops int) Config {
	c := DefaultConfig()
	c.Ops = ops
	return c
}

// Validate rejects µ-op cache geometries the entry encoding cannot
// hold: Entry.Ops is a 4-bit count and Entry.Branches a 2-bit count
// (see the nbits: markers on Entry).
func (c Config) Validate() error {
	if c.Ops <= 0 {
		return fmt.Errorf("uopcache: Ops must be positive, got %d", c.Ops)
	}
	if c.OpsPerEntry <= 0 || c.OpsPerEntry > 15 {
		return fmt.Errorf("uopcache: OpsPerEntry must be in [1,15] (4-bit op count), got %d", c.OpsPerEntry)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("uopcache: Ways must be positive, got %d", c.Ways)
	}
	if c.MaxBranches <= 0 || c.MaxBranches > 3 {
		return fmt.Errorf("uopcache: MaxBranches must be in [1,3] (2-bit branch count), got %d", c.MaxBranches)
	}
	if c.Banks <= 0 {
		return fmt.Errorf("uopcache: Banks must be positive, got %d", c.Banks)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int {
	s := c.Ops / (c.OpsPerEntry * c.Ways)
	if s < 1 {
		return 1
	}
	return s
}

// Entry is one µ-op cache entry: a run of decoded µ-ops starting at
// StartPC, all within one 32-byte region.
type Entry struct {
	// Ops is the number of µ-ops held ([0,8] in the baseline geometry).
	// nbits:4
	Ops uint8
	// Branches is the number of branch targets recorded. nbits:2
	Branches uint8
	// EndsTaken marks an entry terminated by a predicted-taken branch.
	EndsTaken bool
	// Prefetched marks entries inserted by UCP rather than demand build.
	Prefetched bool
	// Used marks entries that served at least one demand hit.
	Used bool
}

// Stats counts µ-op cache traffic.
type Stats struct {
	Lookups, Hits uint64
	Inserts       uint64
	Evictions     uint64
	// Prefetch accounting (Fig. 14): inserted by UCP, hit at least once
	// before eviction, and hit on entries whose alternate path turned
	// out wrong.
	PrefetchInserts     uint64
	PrefetchUsed        uint64
	PrefetchEvictUnused uint64
	// Invalidations counts inclusion-driven entry invalidations.
	Invalidations uint64
}

// UopCache is the decoded µ-op cache.
type UopCache struct {
	cfg  Config
	sets int
	// tags packs each way's valid bit and tag (region tag ⧺ start
	// offset) as validBit|tag (zero = invalid), with LRU stamps in a
	// parallel array: tag checks — which run several times per cycle on
	// both the demand and alternate paths and usually miss — scan one
	// cache line per set without touching the entry payloads.
	tags  []uint64 // sets × ways
	lrus  []uint64 // sets × ways
	data  []Entry
	clock uint64
	stats Stats

	// Set/tag extraction constants (masks when sets is a power of two,
	// as in every shipped configuration) — the tag check runs several
	// times per cycle on both the demand and alternate paths.
	setsPow2 bool
	setMask  uint64
	tagShift uint
}

// validBit marks a live way in the packed tag array. Tags derive from
// PCs shifted right by ≥5 bits, so bit 63 is never part of a tag.
const validBit = uint64(1) << 63

// New constructs a µ-op cache.
func New(cfg Config) *UopCache {
	sets := cfg.Sets()
	u := &UopCache{cfg: cfg, sets: sets,
		tags: make([]uint64, sets*cfg.Ways),
		lrus: make([]uint64, sets*cfg.Ways),
		data: make([]Entry, sets*cfg.Ways)}
	if sets&(sets-1) == 0 {
		u.setsPow2 = true
		u.setMask = uint64(sets - 1)
		shift := uint(0)
		for 1<<shift < sets {
			shift++
		}
		u.tagShift = 5 + shift // log2(EntryBytes) + log2(sets)
	}
	return u
}

// RegionOf returns the 32-byte-aligned region address containing pc.
func RegionOf(pc uint64) uint64 { return pc &^ (isa.EntryBytes - 1) }

func (u *UopCache) setOf(pc uint64) int {
	if u.setsPow2 {
		return int((pc / isa.EntryBytes) & u.setMask)
	}
	return int((pc / isa.EntryBytes) % uint64(u.sets))
}

func (u *UopCache) tagOf(pc uint64) uint64 {
	var region uint64
	if u.setsPow2 {
		region = pc >> u.tagShift
	} else {
		region = pc / isa.EntryBytes / uint64(u.sets)
	}
	off := (pc % isa.EntryBytes) / isa.InstBytes
	return region<<3 | off
}

// BankOf returns the tag-check bank (even/odd set interleaving).
func (u *UopCache) BankOf(pc uint64) int {
	if u.cfg.Banks <= 1 {
		return 0
	}
	return u.setOf(pc) % u.cfg.Banks
}

// Lookup finds the entry starting exactly at pc. It updates LRU and hit
// statistics (demand lookups only — use Probe for tag checks). It runs
// once per fetched entry in the cycle engine's inner loop.
//
//ucplint:hotpath
func (u *UopCache) Lookup(pc uint64) (*Entry, bool) {
	u.stats.Lookups++
	u.clock++
	base := u.setOf(pc) * u.cfg.Ways
	want := validBit | u.tagOf(pc)
	for w, tv := range u.tags[base : base+u.cfg.Ways] {
		if tv == want {
			e := &u.data[base+w]
			u.lrus[base+w] = u.clock
			e.Used = true
			if e.Prefetched {
				u.stats.PrefetchUsed++
				e.Prefetched = false // count each prefetched entry once
			}
			u.stats.Hits++
			return e, true
		}
	}
	return nil, false
}

// Probe is a tag check with no statistics or LRU side effects (used by
// UCP's Alt-FTQ filtering, §IV-D). Like Lookup it sits on the per-cycle
// path.
//
//ucplint:hotpath
func (u *UopCache) Probe(pc uint64) bool {
	base := u.setOf(pc) * u.cfg.Ways
	want := validBit | u.tagOf(pc)
	for _, tv := range u.tags[base : base+u.cfg.Ways] {
		if tv == want {
			return true
		}
	}
	return false
}

// Insert installs an entry starting at pc holding ops µ-ops. prefetched
// distinguishes UCP fills from demand builds.
func (u *UopCache) Insert(pc uint64, ops, branches uint8, endsTaken, prefetched bool) {
	u.stats.Inserts++
	if prefetched {
		u.stats.PrefetchInserts++
	}
	u.clock++
	base := u.setOf(pc) * u.cfg.Ways
	want := validBit | u.tagOf(pc)
	victim, oldest := 0, ^uint64(0)
	for w, tv := range u.tags[base : base+u.cfg.Ways] {
		if tv == want {
			// Rebuild of an existing entry: refresh in place.
			e := &u.data[base+w]
			e.Ops, e.Branches, e.EndsTaken = ops, branches, endsTaken
			u.lrus[base+w] = u.clock
			return
		}
		if tv == 0 {
			victim, oldest = w, 0
			break
		}
		if l := u.lrus[base+w]; l < oldest {
			victim, oldest = w, l
		}
	}
	v := &u.data[base+victim]
	if u.tags[base+victim] != 0 {
		u.stats.Evictions++
		if v.Prefetched && !v.Used {
			u.stats.PrefetchEvictUnused++
		}
	}
	u.tags[base+victim] = want
	u.lrus[base+victim] = u.clock
	*v = Entry{
		Ops: ops, Branches: branches, EndsTaken: endsTaken,
		Prefetched: prefetched,
	}
}

// InvalidateLine invalidates every entry whose code region lies within
// the given 64-byte line. Used by the L1I-inclusive design point
// (§IV-G2): when the L1I evicts a line, the µ-op cache may not keep its
// decoded form.
func (u *UopCache) InvalidateLine(lineAddr uint64) {
	for region := lineAddr &^ (isa.LineBytes - 1); region < lineAddr+isa.LineBytes; region += isa.EntryBytes {
		base := u.setOf(region) * u.cfg.Ways
		regionTag := region / isa.EntryBytes / uint64(u.sets)
		for w, tv := range u.tags[base : base+u.cfg.Ways] {
			if tv != 0 && (tv&^validBit)>>3 == regionTag {
				u.tags[base+w] = 0
				u.data[base+w] = Entry{}
				u.stats.Invalidations++
			}
		}
	}
}

// InvalidateAll empties the cache (used between experiment phases).
func (u *UopCache) InvalidateAll() {
	for i := range u.data {
		u.tags[i] = 0
		u.data[i] = Entry{}
	}
}

// Stats returns a copy of the counters.
func (u *UopCache) Stats() Stats { return u.stats }

// Config returns the geometry.
func (u *UopCache) Config() Config { return u.cfg }

// StorageBits returns the modeled hardware budget: each µ-op slot costs
// ~36 bits (decoded op + immediate share), plus tags and metadata. Used
// for the Fig. 16 cost/benefit axis.
func (u *UopCache) StorageBits() int {
	perEntry := u.cfg.OpsPerEntry*36 + 16 + 8
	return u.sets * u.cfg.Ways * perEntry
}

// StorageKB returns the budget in kilobytes.
func (u *UopCache) StorageKB() float64 { return float64(u.StorageBits()) / 8 / 1024 }
