package uopcache

import (
	"testing"
	"testing/quick"

	"ucp/internal/isa"
)

func TestGeometry(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Sets() != 64 {
		t.Fatalf("4Kops sets = %d, want 64 (Table II)", cfg.Sets())
	}
	if ConfigOps(8192).Sets() != 128 || ConfigOps(65536).Sets() != 1024 {
		t.Fatal("size sweep geometry wrong")
	}
}

func TestInsertLookup(t *testing.T) {
	u := New(DefaultConfig())
	u.Insert(0x1004, 7, 1, true, false)
	e, hit := u.Lookup(0x1004)
	if !hit || e.Ops != 7 || e.Branches != 1 || !e.EndsTaken {
		t.Fatalf("lookup: %+v hit=%v", e, hit)
	}
	// An entry is keyed by its exact start PC: same region, different
	// offset must miss.
	if _, hit := u.Lookup(0x1000); hit {
		t.Fatal("offset-mismatched lookup hit")
	}
}

func TestProbeHasNoSideEffects(t *testing.T) {
	u := New(DefaultConfig())
	u.Insert(0x2000, 8, 0, false, true)
	for i := 0; i < 5; i++ {
		if !u.Probe(0x2000) {
			t.Fatal("probe missed")
		}
	}
	s := u.Stats()
	if s.Lookups != 0 || s.Hits != 0 || s.PrefetchUsed != 0 {
		t.Fatalf("probe mutated stats: %+v", s)
	}
}

func TestPrefetchAccounting(t *testing.T) {
	u := New(DefaultConfig())
	u.Insert(0x3000, 8, 0, false, true)
	u.Insert(0x4000, 8, 0, false, true)
	if s := u.Stats(); s.PrefetchInserts != 2 {
		t.Fatalf("prefetch inserts %d", s.PrefetchInserts)
	}
	u.Lookup(0x3000)
	u.Lookup(0x3000) // second hit must not double-count
	if s := u.Stats(); s.PrefetchUsed != 1 {
		t.Fatalf("prefetch used %d, want 1", s.PrefetchUsed)
	}
	// Evict the unused prefetched entry at 0x4000 by filling its set.
	cfg := DefaultConfig()
	stride := uint64(cfg.Sets() * isa.EntryBytes)
	for i := 1; i <= cfg.Ways; i++ {
		u.Insert(0x4000+uint64(i)*stride, 8, 0, false, false)
	}
	if s := u.Stats(); s.PrefetchEvictUnused != 1 {
		t.Fatalf("unused prefetch evictions %d, want 1", s.PrefetchEvictUnused)
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := DefaultConfig()
	u := New(cfg)
	stride := uint64(cfg.Sets() * isa.EntryBytes)
	for i := 0; i <= cfg.Ways; i++ { // one more than the ways
		u.Insert(uint64(i)*stride, 8, 0, false, false)
		if i == 0 {
			continue
		}
		u.Lookup(0) // keep the first entry MRU
	}
	if _, hit := u.Lookup(0); !hit {
		t.Fatal("MRU entry evicted")
	}
	if _, hit := u.Lookup(stride); hit {
		t.Fatal("LRU entry survived")
	}
}

func TestBankInterleaving(t *testing.T) {
	u := New(DefaultConfig())
	if u.BankOf(0x1000) == u.BankOf(0x1020) {
		t.Fatal("adjacent regions map to the same bank")
	}
	if err := quick.Check(func(pc uint64) bool {
		b := u.BankOf(pc)
		return b >= 0 && b < 2
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInsertRefreshesInPlace(t *testing.T) {
	u := New(DefaultConfig())
	u.Insert(0x5000, 4, 1, false, false)
	u.Insert(0x5000, 6, 2, true, false)
	e, hit := u.Lookup(0x5000)
	if !hit || e.Ops != 6 || e.Branches != 2 || !e.EndsTaken {
		t.Fatalf("refresh failed: %+v", e)
	}
	if s := u.Stats(); s.Evictions != 0 {
		t.Fatal("in-place refresh evicted")
	}
}

// buildSeq runs a sequence through a Builder and returns the cache.
func buildSeq(t *testing.T, seq []struct {
	pc    uint64
	class isa.Class
	taken bool
}) *UopCache {
	t.Helper()
	u := New(DefaultConfig())
	b := NewBuilder(u, false)
	for _, s := range seq {
		b.Add(s.pc, s.class, s.taken)
	}
	b.Flush(false)
	return u
}

func TestBuilderRegionBoundary(t *testing.T) {
	// 10 sequential ALU ops starting at 0x1000: the first 8 fill one
	// entry (32B region), the next 2 open a second entry at 0x1020.
	var seq []struct {
		pc    uint64
		class isa.Class
		taken bool
	}
	for i := 0; i < 10; i++ {
		seq = append(seq, struct {
			pc    uint64
			class isa.Class
			taken bool
		}{0x1000 + uint64(i)*4, isa.ALU, false})
	}
	u := buildSeq(t, seq)
	e, hit := u.Lookup(0x1000)
	if !hit || e.Ops != 8 {
		t.Fatalf("first entry: %+v hit=%v", e, hit)
	}
	e, hit = u.Lookup(0x1020)
	if !hit || e.Ops != 2 {
		t.Fatalf("second entry: %+v hit=%v", e, hit)
	}
}

func TestBuilderTakenBranchTerminates(t *testing.T) {
	u := New(DefaultConfig())
	b := NewBuilder(u, false)
	b.Add(0x1000, isa.ALU, false)
	b.Add(0x1004, isa.CondBranch, true) // predicted taken → terminate
	b.Add(0x2000, isa.ALU, false)       // branch target: new entry
	b.Flush(false)
	e, hit := u.Lookup(0x1000)
	if !hit || e.Ops != 2 || !e.EndsTaken || e.Branches != 1 {
		t.Fatalf("taken-terminated entry: %+v", e)
	}
	if _, hit := u.Lookup(0x2000); !hit {
		t.Fatal("entry at branch target missing")
	}
}

func TestBuilderMidRegionEntryStart(t *testing.T) {
	// Fetch enters a region at a non-zero offset (branch target at
	// 0x100c): the entry must start there and cover to the boundary.
	u := New(DefaultConfig())
	b := NewBuilder(u, false)
	for pc := uint64(0x100c); pc < 0x1020; pc += 4 {
		b.Add(pc, isa.ALU, false)
	}
	b.Flush(false)
	e, hit := u.Lookup(0x100c)
	if !hit || e.Ops != 5 {
		t.Fatalf("mid-region entry: %+v hit=%v", e, hit)
	}
}

func TestBuilderThirdBranchStartsNewEntry(t *testing.T) {
	// Three not-taken branches in one region: the third must start a
	// second entry in the same region (§III-A).
	u := New(DefaultConfig())
	b := NewBuilder(u, false)
	b.Add(0x1000, isa.CondBranch, false)
	b.Add(0x1004, isa.CondBranch, false)
	b.Add(0x1008, isa.CondBranch, false)
	b.Add(0x100c, isa.ALU, false)
	b.Flush(false)
	e, hit := u.Lookup(0x1000)
	if !hit || e.Ops != 2 || e.Branches != 2 {
		t.Fatalf("first entry: %+v hit=%v", e, hit)
	}
	e, hit = u.Lookup(0x1008)
	if !hit || e.Ops != 2 || e.Branches != 1 {
		t.Fatalf("second entry: %+v hit=%v", e, hit)
	}
}

func TestBuilderNonSequentialFlushes(t *testing.T) {
	// A jump within the same region still breaks the entry (µ-ops must
	// be consecutive).
	u := New(DefaultConfig())
	b := NewBuilder(u, false)
	b.Add(0x1000, isa.ALU, false)
	b.Add(0x1010, isa.ALU, false) // gap
	b.Flush(false)
	if _, hit := u.Lookup(0x1000); !hit {
		t.Fatal("first fragment missing")
	}
	if _, hit := u.Lookup(0x1010); !hit {
		t.Fatal("second fragment missing")
	}
}

func TestBuilderProperty(t *testing.T) {
	// Property: entries never exceed 8 ops or 2 branches, and always lie
	// within one region.
	if err := quick.Check(func(seed uint64, n uint8) bool {
		u := New(DefaultConfig())
		b := NewBuilder(u, false)
		pc := uint64(0x1000)
		x := seed
		for i := 0; i < int(n)+5; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			cl := isa.ALU
			taken := false
			switch x >> 60 {
			case 0:
				cl, taken = isa.CondBranch, x>>59&1 == 0
			case 1:
				cl, taken = isa.DirectJump, true
			}
			b.Add(pc, cl, taken)
			if taken {
				pc = (x >> 32 &^ 3) & 0xffff0
			} else {
				pc += 4
			}
		}
		b.Flush(false)
		for i := range u.data {
			if u.tags[i] == 0 {
				continue
			}
			e := &u.data[i]
			if e.Ops == 0 || e.Ops > 8 || e.Branches > 2 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStorage(t *testing.T) {
	u := New(DefaultConfig())
	kb := u.StorageKB()
	// 4K µ-ops ≈ 19KB of op storage + tags: the paper quotes ~24.9KB of
	// x86 reach for Zen4's 6.75Kops; the order of magnitude must match.
	if kb < 10 || kb > 40 {
		t.Fatalf("4Kops storage %.1fKB implausible", kb)
	}
	if New(ConfigOps(8192)).StorageKB() < 1.9*kb {
		t.Fatal("8Kops should be ~2x the 4Kops budget")
	}
}

func TestSplitBuilderAgreement(t *testing.T) {
	// Property: for any consecutive fetch run, Split's entry specs and
	// the Builder's inserted entries agree exactly (same keys, ops,
	// branch counts, termination flags).
	if err := quick.Check(func(seed uint64, n uint8) bool {
		cfg := DefaultConfig()
		var metas []InstMeta
		pc := uint64(0x1000)
		x := seed
		for i := 0; i < int(n%48)+4; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			cl := isa.ALU
			taken := false
			switch x >> 61 {
			case 0:
				cl, taken = isa.CondBranch, x>>60&1 == 0
			case 1:
				cl, taken = isa.DirectJump, true
			}
			metas = append(metas, InstMeta{PC: pc, Class: cl, PredTaken: taken})
			if taken {
				pc = (x >> 33 &^ 3) & 0xffffc
			} else {
				pc += 4
			}
		}
		specs := Split(metas, cfg)
		u := New(cfg)
		b := NewBuilder(u, false)
		for _, m := range metas {
			b.Add(m.PC, m.Class, m.PredTaken)
		}
		b.Flush(false)
		// Every spec key must exist; when control flow revisits a start
		// PC, the cache keeps the LAST build (in-place refresh), so
		// metadata is compared against the last spec per key.
		lastSpec := map[uint64]EntrySpec{}
		for _, s := range specs {
			lastSpec[s.StartPC] = s
		}
		for _, s := range specs {
			if _, hit := u.Lookup(s.StartPC); !hit {
				return false
			}
		}
		for pc, s := range lastSpec {
			e, hit := u.Lookup(pc)
			if !hit || e.Ops != s.Ops || e.Branches != s.Branches {
				return false
			}
		}
		// Total ops across specs must equal the instruction count.
		total := 0
		for _, s := range specs {
			total += int(s.Ops)
		}
		return total == len(metas)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitEmpty(t *testing.T) {
	if got := Split(nil, DefaultConfig()); len(got) != 0 {
		t.Fatalf("Split(nil) = %v", got)
	}
}

func TestInvalidateLine(t *testing.T) {
	u := New(DefaultConfig())
	// Two regions in line 0x1000-0x103f, plus one outside.
	u.Insert(0x1004, 7, 0, false, false)
	u.Insert(0x1020, 8, 0, false, false)
	u.Insert(0x1040, 8, 0, false, false)
	u.InvalidateLine(0x1000)
	if u.Probe(0x1004) || u.Probe(0x1020) {
		t.Fatal("entries in the invalidated line survive")
	}
	if !u.Probe(0x1040) {
		t.Fatal("entry outside the invalidated line was dropped")
	}
	if u.Stats().Invalidations != 2 {
		t.Fatalf("invalidations %d, want 2", u.Stats().Invalidations)
	}
}
