// Package wpar runs one *sampled* simulation time-parallel: instead of
// the serial SMARTS controller's chain (one machine alternating
// fast-forward and measured windows end to end), every measured window
// of the sampling schedule (sim.Config.SampleWindows) becomes an
// independent unit of work — a sim.RunSegment over the window's
// measured span, boundary-warmed by the same warming pyramid with the
// horizons the sampling geometry already specifies
// (sim.SamplingConfig.BoundaryWarm). Windows simulate concurrently on a
// bounded worker pool over per-worker arena cursors, their boundary
// states restore from content-addressed internal/ckpt checkpoints when
// a store is attached (shared address space with internal/tpar's
// segment boundaries), and the per-window results merge in window-index
// order — so SampledStats, both confidence intervals, and the
// determinism digest are byte-identical at every worker count.
//
// Adaptive mode (SamplingConfig.TargetCI) composes by speculation:
// workers dispatch windows ahead of the pinned group-sequential stop
// schedule, a reorder buffer feeds completed windows to the shared stop
// rule (sim.AdaptiveStop — the same type the serial controller runs)
// strictly in window-index order, and every speculatively simulated
// window past the stop point is discarded deterministically. A parallel
// adaptive run therefore stops at exactly the same window as a serial
// one; the speculative windows cost wall-clock the stop saves anyway,
// never correctness.
//
// The price is the window-independence error model: each window's start
// state is rebuilt from the warming pyramid alone, whereas the serial
// chain additionally carries converging long-history state (predictor
// tables above the BP-warm horizon) across windows. EXPERIMENTS.md
// quantifies the IPC delta; the check.sh window-parallel gate records
// it per run in BENCH_wpar.json.
package wpar

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"ucp/internal/cache"
	"ucp/internal/ckpt"
	"ucp/internal/core"
	"ucp/internal/frontend"
	"ucp/internal/sim"
	"ucp/internal/stats"
	"ucp/internal/trace"
	"ucp/internal/uopcache"
)

// Options configures one window-parallel sampled run. Unlike tpar there
// is no segment count and no warming geometry here: the window schedule
// and the boundary warm both come from the config's SamplingConfig, so
// a window-parallel run measures exactly the windows the sampling
// geometry promises.
type Options struct {
	// Workers bounds concurrent window simulations (GOMAXPROCS when
	// <= 0). Results are byte-identical at any value.
	Workers int
	// Checkpoints, when non-nil, caches each window boundary's
	// functional-warm state under a content-addressed key
	// (sim.BoundaryKey, with single-flight capture): the first run
	// captures, later runs — or concurrent runs sharing a boundary —
	// restore, byte-identically. TraceID must then identify the
	// instruction stream exactly.
	Checkpoints *ckpt.Store
	TraceID     string
	// Gate, when non-nil, bounds window concurrency across multiple
	// concurrent parallel runs sharing it (internal/runq sizes one gate
	// at its worker count). Each in-flight window holds one slot.
	Gate chan struct{}
	// Hook receives progress notifications (observability only). It may
	// be invoked from multiple goroutines; calls are serialized.
	Hook sim.ProgressFunc
}

// Run executes a sampled cfg window-parallel over the trace. newSource
// must return a fresh, independent stream at position zero on every
// call (arena cursors; called from multiple goroutines). Full-detail
// configs are rejected — they time-parallelize through internal/tpar.
func Run(cfg sim.Config, newSource func() trace.Source, code core.CodeInfo, traceName string, opts Options) (sim.Result, error) {
	if err := cfg.Validate(); err != nil {
		return sim.Result{}, err
	}
	if !cfg.Sampling.Enabled {
		return sim.Result{}, fmt.Errorf("wpar: config %q is full-detail; full-detail runs time-parallelize through internal/tpar", cfg.Name)
	}
	if err := cfg.ValidateSegments(2); err != nil {
		return sim.Result{}, err
	}
	s := cfg.Sampling
	warm := s.BoundaryWarm()
	if err := warm.Validate(); err != nil {
		return sim.Result{}, fmt.Errorf("wpar: sampling geometry does not map onto a boundary warm: %w", err)
	}

	specs := cfg.SampleWindows()
	budget := len(specs)
	adaptive := s.Adaptive()
	maxW := budget
	if adaptive && s.MaxWindows > 0 && s.MaxWindows < maxW {
		maxW = s.MaxWindows
	}
	specs = specs[:maxW]

	// Each window runs as a full-detail segment: Sampling is stripped so
	// the per-window machine is the plain detailed engine (RunSegment's
	// contract), and the warm above carries the sampling horizons. This
	// also means window boundaries share sim.BoundaryKey checkpoint
	// addresses with any tpar boundary at the same position and horizons.
	cfgFD := cfg
	cfgFD.Sampling = sim.SamplingConfig{}

	var wc *sim.WarmCheckpoints
	if opts.Checkpoints != nil {
		wc = &sim.WarmCheckpoints{Store: opts.Checkpoints, TraceID: opts.TraceID}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > maxW {
		workers = maxW
	}

	// Serialized progress, as in tpar: completions arrive from any
	// worker, the hook contract is single-goroutine.
	var noteMu sync.Mutex
	noted := 0
	note := func(rel float64, refining bool) {
		if opts.Hook == nil {
			return
		}
		noteMu.Lock()
		defer noteMu.Unlock()
		noted++
		if refining {
			opts.Hook(sim.Progress{Stage: sim.StageRefining, WindowsDone: noted, WindowsTotal: maxW, HalfWidth: rel})
		} else {
			opts.Hook(sim.Progress{Stage: sim.StageMeasuring, WindowsDone: noted, WindowsTotal: maxW})
		}
	}
	if opts.Hook != nil {
		opts.Hook(sim.Progress{Stage: sim.StageWarming, WindowsDone: 0, WindowsTotal: maxW})
	}

	// runOne simulates one window with its own recover, holding a Gate
	// slot while in flight, exactly like a tpar segment.
	runOne := func(spec sim.SegmentSpec) (res sim.SegmentResult, err error) {
		if opts.Gate != nil {
			opts.Gate <- struct{}{}
			defer func() { <-opts.Gate }()
		}
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("window %d: panic: %v", spec.Index, r)
			}
		}()
		return sim.RunSegment(cfgFD, newSource(), code, spec, warm, wc)
	}

	// Coordination state, all under mu. The feeder below hands out window
	// indices in order — issuance running ahead of the stop rule is the
	// speculation — and completions feed the reorder buffer. advance
	// consumes completed windows strictly in index order through the
	// shared stop rule; once it stops (or trips over an in-order error),
	// issuance ceases and everything past the stop point is discarded.
	// The stop decision is a pure function of the in-order window
	// sequence, so it is identical at every worker count and schedule.
	type windowObs struct {
		insts, cycles uint64
	}
	var (
		mu       sync.Mutex
		obs      = make([]windowObs, maxW)
		errs     = make([]error, maxW)
		doneW    = make([]bool, maxW)
		consumed int
		stopAt   = -1 // inclusive index of the stop window; -1: none
		hardErr  error
		as       = sim.NewAdaptiveStop(s, maxW)
	)
	advance := func() {
		for stopAt < 0 && hardErr == nil && consumed < maxW && doneW[consumed] {
			k := consumed
			if errs[k] != nil {
				// The serial chain would have failed at this window; stop
				// consuming and issuing. Later windows' outcomes (fine or
				// failed) are speculative and irrelevant.
				hardErr = fmt.Errorf("wpar: window %d: %w", k, errs[k])
				return
			}
			consumed++
			if _, stop := as.Observe(obs[k].insts, obs[k].cycles); stop {
				stopAt = k
			}
		}
	}

	accs := make([]*Accum, workers)
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := NewAccum(maxW)
			accs[w] = acc
			for i := range idxCh {
				res, err := runOne(specs[i])

				mu.Lock()
				doneW[i] = true
				if err != nil {
					errs[i] = err
				} else {
					obs[i] = windowObs{insts: res.Insts, cycles: res.Cycles}
				}
				var rel float64
				refining := false
				if adaptive {
					advance()
					if consumed >= as.Min() {
						rel = as.Rel()
						refining = true
					}
				}
				mu.Unlock()
				if err == nil {
					acc.AddWindow(res)
				}
				note(rel, refining)
			}
		}(w)
	}
	// Feed window indices in issue order. A send already blocked when
	// the consumer stops still hands one more speculative window to a
	// worker; it is discarded at reduction like every other window past
	// the stop point, so the result stays schedule-independent.
	for i := 0; i < maxW; i++ {
		mu.Lock()
		stopped := stopAt >= 0 || hardErr != nil
		mu.Unlock()
		if stopped {
			break
		}
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	if hardErr != nil {
		return sim.Result{}, hardErr
	}
	include := maxW
	targetMet := false
	if stopAt >= 0 {
		include = stopAt + 1
		targetMet = true
	}
	// Deterministic error selection over the included prefix: the
	// lowest-indexed failure wins (non-adaptive path; the adaptive
	// consumer surfaces the same window as hardErr above).
	for i := 0; i < include; i++ {
		if errs[i] != nil {
			return sim.Result{}, fmt.Errorf("wpar: window %d: %w", i, errs[i])
		}
	}

	merged := accs[0]
	for _, acc := range accs[1:] {
		merged.Merge(acc)
	}
	return merged.Result(cfg, traceName, include, budget, targetMet)
}

// Accum accumulates per-window results, keyed by window index. Cells
// from different Accums are disjoint (each window is simulated exactly
// once), which is what makes Merge commutative; every order-sensitive
// reduction is deferred to Result's window-ordered walk.
type Accum struct {
	cells []*sim.SegmentResult
}

// NewAccum returns an accumulator for a run of up to n windows.
func NewAccum(n int) *Accum {
	return &Accum{cells: make([]*sim.SegmentResult, n)}
}

// AddWindow files one window's result under its index. Filing two
// results under one index is a scheduling bug and panics.
func (a *Accum) AddWindow(r sim.SegmentResult) {
	if r.Index < 0 || r.Index >= len(a.cells) {
		panic(fmt.Sprintf("wpar: window index %d out of range [0, %d)", r.Index, len(a.cells)))
	}
	if a.cells[r.Index] != nil {
		panic(fmt.Sprintf("wpar: window %d accumulated twice", r.Index))
	}
	c := r
	a.cells[r.Index] = &c
}

// Merge folds b's cells into a. Cell sets are disjoint by construction,
// so the merge is a pure union — no arithmetic at all — and therefore
// commutative. Verified dynamically by TestAccumMergeCommutes
// (shuffle-merge under seeded random orderings, stats.CheckCommutative).
//
//ucplint:commutative
func (a *Accum) Merge(b *Accum) {
	if len(b.cells) > len(a.cells) {
		grown := make([]*sim.SegmentResult, len(b.cells))
		copy(grown, a.cells)
		a.cells = grown
	}
	for i, c := range b.cells {
		if c == nil {
			continue
		}
		if a.cells[i] != nil {
			panic(fmt.Sprintf("wpar: window %d accumulated twice across merge", i))
		}
		a.cells[i] = c
	}
}

// Result reduces the first `include` accumulated windows — in window
// order, never arrival order — into one sim.Result shaped like the
// serial sampled controller's: a SampledStats block with the per-window
// IPC/MPKI observations and Student-t 95% intervals, plus a
// TimeParStats block recording the parallel window provenance. Windows
// past `include` (speculation beyond an adaptive stop) are ignored.
// budget is the fixed schedule's full window count (adaptive
// provenance); targetMet reports an adaptive stop.
func (a *Accum) Result(cfg sim.Config, traceName string, include, budget int, targetMet bool) (sim.Result, error) {
	if include < 1 || include > len(a.cells) {
		return sim.Result{}, fmt.Errorf("wpar: include %d out of range [1, %d]", include, len(a.cells))
	}
	var (
		insts, cycles  uint64
		skipped, ff    uint64
		detailed       uint64
		fe             frontend.Stats
		uop            uopcache.Stats
		ucp            core.Stats
		l1i            cache.Stats
		stream, refill *stats.Histogram
		ipcs, mpkis    []float64
	)
	t := &sim.TimeParStats{Segments: include}
	for i := 0; i < include; i++ {
		c := a.cells[i]
		if c == nil {
			return sim.Result{}, fmt.Errorf("wpar: merge is missing window %d of %d", i, include)
		}
		insts += c.Insts
		cycles += c.Cycles
		skipped += c.SkippedInsts
		ff += c.FFInsts
		detailed += c.DetailedInsts
		sim.AddCounters(&fe, c.FE)
		sim.AddCounters(&uop, c.Uop)
		sim.AddCounters(&ucp, c.UCP)
		sim.AddCounters(&l1i, c.L1I)
		if stream == nil {
			stream, refill = c.StreamLens.Clone(), c.RefillLat.Clone()
		} else {
			stream.Merge(c.StreamLens)
			refill.Merge(c.RefillLat)
		}
		segIPC := 0.0
		if c.Cycles > 0 {
			segIPC = float64(c.Insts) / float64(c.Cycles)
			ipcs = append(ipcs, segIPC)
		}
		if c.Insts > 0 {
			mpkis = append(mpkis, float64(c.FE.CondMispredicts)/float64(c.Insts)*1000)
		}
		t.Boundaries = append(t.Boundaries, c.Start)
		t.SegInsts = append(t.SegInsts, c.Insts)
		t.SegCycles = append(t.SegCycles, c.Cycles)
		t.SegIPC = append(t.SegIPC, segIPC)
	}
	t.SkippedInsts, t.FFInsts = skipped, ff

	sampled := &sim.SampledStats{
		Windows:       len(ipcs),
		SkippedInsts:  skipped,
		FFInsts:       ff,
		DetailedInsts: detailed,
		MeasuredInsts: insts,
		WindowIPC:     ipcs,
		WindowMPKI:    mpkis,
	}
	if cfg.Sampling.Adaptive() {
		sampled.TargetCI = cfg.Sampling.TargetCI
		sampled.WindowBudget = budget
		sampled.TargetMet = targetMet
	}
	sampled.IPCMean, sampled.IPCCI95 = stats.CI95(ipcs)
	sampled.MPKIMean, sampled.MPKICI95 = stats.CI95(mpkis)
	if math.IsInf(sampled.IPCCI95, 1) {
		sampled.IPCCI95 = 0
	}
	if math.IsInf(sampled.MPKICI95, 1) {
		sampled.MPKICI95 = 0
	}

	r := sim.Result{
		Name:       cfg.Name,
		Trace:      traceName,
		Insts:      insts,
		Cycles:     cycles,
		FE:         fe,
		Uop:        uop,
		UCP:        ucp,
		L1I:        l1i,
		StreamLens: stream,
		RefillLat:  refill,
		Sampled:    sampled,
		TimePar:    t,
	}
	if cycles > 0 {
		r.IPC = float64(insts) / float64(cycles)
	}
	if fetched := fe.UopsFromUopCache + fe.UopsFromDecode; fetched > 0 {
		r.UopHitRate = float64(fe.UopsFromUopCache) / float64(fetched)
	}
	if insts > 0 {
		r.SwitchPKI = float64(fe.ModeSwitches) / float64(insts) * 1000
		r.CondMPKI = float64(fe.CondMispredicts) / float64(insts) * 1000
	}
	if uop.PrefetchInserts > 0 {
		r.PrefetchAccuracy = float64(uop.PrefetchUsed) / float64(uop.PrefetchInserts)
	}
	r.UCPStorageKB = a.cells[0].UCPStorageKB
	return r, nil
}
