package wpar_test

import (
	"strings"
	"testing"

	"ucp/internal/ckpt"
	"ucp/internal/core"
	"ucp/internal/sim"
	"ucp/internal/stats"
	"ucp/internal/trace"
	"ucp/internal/wpar"
)

// testArena decodes prof into an arena budgeted for end + slack; every
// window draws a fresh cursor from it, like runq does.
func testArena(t *testing.T, profName string, end uint64) (*trace.Arena, *trace.Program) {
	t.Helper()
	prof, ok := trace.ProfileByName(profName)
	if !ok {
		t.Fatalf("unknown profile %q", profName)
	}
	prog, err := trace.BuildProgram(prof)
	if err != nil {
		t.Fatalf("building %s: %v", profName, err)
	}
	return trace.ArenaFromSource(trace.NewWalker(prog), int(end)+200_000), prog
}

// sampledCfg is a cheap 4-window sampled geometry over crypto01-scale
// budgets: 20K warmup, 40K measured, one 2K window per 10K period.
func sampledCfg() sim.Config {
	cfg := sim.WithUCP(core.DefaultConfig())
	cfg.WarmupInsts, cfg.MeasureInsts = 20_000, 40_000
	cfg.Sampling = sim.SamplingConfig{
		Enabled:       true,
		PeriodInsts:   10_000,
		DetailedInsts: 2_000,
		WarmInsts:     2_000,
		FFWarmInsts:   5_000,
	}
	return cfg
}

// TestWorkerCountInvariance is the tentpole determinism bar: the same
// window-parallel sampled run must produce byte-identical digests at
// any worker count, with both a sampled section (window IPCs, CIs) and
// a timepar section (window provenance).
func TestWorkerCountInvariance(t *testing.T) {
	cfg := sampledCfg()
	a, prog := testArena(t, "crypto01", 60_000)

	run := func(workers int) sim.Result {
		r, err := wpar.Run(cfg, func() trace.Source { return a.Cursor() }, prog, "crypto01",
			wpar.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return r
	}
	r1 := run(1)
	d1 := r1.DeterminismDigest()
	for _, w := range []int{2, 8} {
		if dw := run(w).DeterminismDigest(); dw != d1 {
			t.Fatalf("digest differs between workers=1 and workers=%d:\n%s\n---\n%s", w, d1, dw)
		}
	}
	for _, want := range []string{"sampled windows=4", "sampled w0 ipc=", "timepar segments=4", "timepar s3 "} {
		if !strings.Contains(d1, want) {
			t.Errorf("digest missing %q section:\n%s", want, d1)
		}
	}
	if r1.Sampled == nil || r1.Sampled.MeasuredInsts == 0 {
		t.Fatalf("Sampled = %+v, want populated window statistics", r1.Sampled)
	}
}

// TestMatchesSerialSampledGeometry: the parallel run must measure
// exactly the windows the serial sampled controller measures — same
// count, same measured instruction total — and estimate a close IPC
// (the residual is the window-independence error, bounded loosely here
// and measured precisely by the check.sh gate).
func TestMatchesSerialSampledGeometry(t *testing.T) {
	cfg := sampledCfg()
	a, prog := testArena(t, "crypto01", 60_000)

	serial, err := sim.Run(cfg, a.Cursor(), prog, "crypto01")
	if err != nil {
		t.Fatalf("serial sampled run: %v", err)
	}
	par, err := wpar.Run(cfg, func() trace.Source { return a.Cursor() }, prog, "crypto01",
		wpar.Options{Workers: 2})
	if err != nil {
		t.Fatalf("wpar run: %v", err)
	}
	if par.Sampled.Windows != serial.Sampled.Windows {
		t.Errorf("windows: parallel %d, serial %d", par.Sampled.Windows, serial.Sampled.Windows)
	}
	// Window ends are commit-granular (runUntil overshoots by up to one
	// commit window, deterministically but state-dependently), so the
	// totals may differ by a few instructions per window — never more.
	diff := int64(par.Sampled.MeasuredInsts) - int64(serial.Sampled.MeasuredInsts)
	if diff < 0 {
		diff = -diff
	}
	if diff > int64(16*par.Sampled.Windows) {
		t.Errorf("measured insts: parallel %d, serial %d (beyond commit-width overshoot)",
			par.Sampled.MeasuredInsts, serial.Sampled.MeasuredInsts)
	}
	if serial.IPC <= 0 {
		t.Fatalf("serial IPC = %g", serial.IPC)
	}
	if relErr := (par.IPC - serial.IPC) / serial.IPC; relErr > 0.10 || relErr < -0.10 {
		t.Errorf("window-independence IPC error %.4f exceeds the loose 10%% test bound (parallel %.4f, serial %.4f)",
			relErr, par.IPC, serial.IPC)
	}
}

// TestAdaptiveStopInvariant: adaptive+parallel must stop at exactly the
// same window at every worker count — speculative windows dispatched
// past the stop point are discarded deterministically, so the digests
// (which include the per-window list and the adaptive provenance line)
// are byte-identical too.
func TestAdaptiveStopInvariant(t *testing.T) {
	cfg := sampledCfg()
	cfg.MeasureInsts = 120_000 // 12-window budget
	cfg.Sampling.PeriodInsts = 10_000
	cfg.Sampling.TargetCI = 0.10
	a, prog := testArena(t, "crypto01", 140_000)

	run := func(workers int) sim.Result {
		r, err := wpar.Run(cfg, func() trace.Source { return a.Cursor() }, prog, "crypto01",
			wpar.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return r
	}
	r1 := run(1)
	d1 := r1.DeterminismDigest()
	for _, w := range []int{3, 8} {
		rw := run(w)
		if rw.Sampled.Windows != r1.Sampled.Windows {
			t.Fatalf("adaptive stop window differs: workers=1 measured %d, workers=%d measured %d",
				r1.Sampled.Windows, w, rw.Sampled.Windows)
		}
		if dw := rw.DeterminismDigest(); dw != d1 {
			t.Fatalf("adaptive digest differs between workers=1 and workers=%d:\n%s\n---\n%s", w, d1, dw)
		}
	}
	if r1.Sampled.TargetCI != cfg.Sampling.TargetCI || r1.Sampled.WindowBudget != 12 {
		t.Errorf("adaptive provenance = %+v, want TargetCI=%g budget=12", r1.Sampled, cfg.Sampling.TargetCI)
	}
	if !strings.Contains(d1, "sampled adaptive target=") {
		t.Errorf("digest missing adaptive line:\n%s", d1)
	}
}

// TestCheckpointRestoredRunIdentical: a run restoring all window
// boundary checkpoints captured by an earlier run must be
// byte-identical to the cold run — and actually hit the store.
func TestCheckpointRestoredRunIdentical(t *testing.T) {
	cfg := sampledCfg()
	a, prog := testArena(t, "crypto01", 60_000)
	store := ckpt.NewStore("")

	run := func(st *ckpt.Store) sim.Result {
		r, err := wpar.Run(cfg, func() trace.Source { return a.Cursor() }, prog, "crypto01",
			wpar.Options{Workers: 2, Checkpoints: st, TraceID: "test:" + a.ID()})
		if err != nil {
			t.Fatalf("wpar run: %v", err)
		}
		return r
	}
	cold := run(nil)
	captured := run(store)
	if store.Len() == 0 {
		t.Fatal("capturing run published no boundary checkpoints")
	}
	hitsBefore := store.Hits()
	restored := run(store)
	if store.Hits() <= hitsBefore {
		t.Fatal("restore run never hit the checkpoint store")
	}
	cd := cold.DeterminismDigest()
	if d := captured.DeterminismDigest(); d != cd {
		t.Fatalf("capturing run digest differs from cold:\n%s\n---\n%s", d, cd)
	}
	if d := restored.DeterminismDigest(); d != cd {
		t.Fatalf("checkpoint-restored run digest differs from cold:\n%s\n---\n%s", d, cd)
	}
}

// TestRejectsFullDetail: wpar is the sampled executor; a full-detail
// config must be routed to tpar, not silently planned as zero windows.
func TestRejectsFullDetail(t *testing.T) {
	cfg := sim.Baseline()
	a, prog := testArena(t, "crypto01", 10_000)
	_, err := wpar.Run(cfg, func() trace.Source { return a.Cursor() }, prog, "crypto01", wpar.Options{})
	if err == nil || !strings.Contains(err.Error(), "tpar") {
		t.Fatalf("full-detail config not rejected toward tpar: err = %v", err)
	}
}

// TestAccumMergeCommutes backs Accum.Merge's //ucplint:commutative
// annotation with the dynamic shuffle-merge harness: per-worker accums
// holding disjoint window sets must reduce to byte-identical digests
// under any merge order. Registered in ucplint's verified set
// (TestCommutativeAnnotationsAreShuffleTested).
func TestAccumMergeCommutes(t *testing.T) {
	cfg := sampledCfg()
	a, prog := testArena(t, "crypto01", 60_000)

	cfgFD := cfg
	cfgFD.Sampling = sim.SamplingConfig{}
	warm := cfg.Sampling.BoundaryWarm()
	specs := cfg.SampleWindows()
	parts := make([]*wpar.Accum, len(specs))
	for i, spec := range specs {
		res, err := sim.RunSegment(cfgFD, a.Cursor(), prog, spec, warm, nil)
		if err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
		parts[i] = wpar.NewAccum(len(specs))
		parts[i].AddWindow(res)
	}
	err := stats.CheckCommutative(
		func() *wpar.Accum { return wpar.NewAccum(len(specs)) },
		func(dst, src *wpar.Accum) { dst.Merge(src) },
		func(acc *wpar.Accum) string {
			r, err := acc.Result(cfg, "crypto01", len(specs), len(specs), false)
			if err != nil {
				t.Fatalf("Result after full merge: %v", err)
			}
			return r.DeterminismDigest()
		},
		parts, 0xF00D, 64,
	)
	if err != nil {
		t.Fatal(err)
	}
}

// TestResultMissingWindow: reducing an accumulator with a hole in the
// included prefix must fail loudly, and speculative windows past the
// include point must not be required.
func TestResultMissingWindow(t *testing.T) {
	cfg := sampledCfg()
	acc := wpar.NewAccum(3)
	acc.AddWindow(sim.SegmentResult{Index: 0, Start: 0, End: 10, Insts: 10, Cycles: 20})
	acc.AddWindow(sim.SegmentResult{Index: 2, Start: 20, End: 30, Insts: 10, Cycles: 20})
	if _, err := acc.Result(cfg, "x", 3, 3, false); err == nil || !strings.Contains(err.Error(), "missing window 1") {
		t.Fatalf("hole not detected: err = %v", err)
	}
	// include=1 ignores the hole at 1 and the speculative cell at 2.
	if _, err := acc.Result(cfg, "x", 1, 3, true); err != nil {
		t.Fatalf("include=1 reduction failed: %v", err)
	}
}

// TestTrailingRemainderWindow: a period-unaligned MeasureInsts gets a
// trailing window over the remainder, in parallel exactly as in serial.
func TestTrailingRemainderWindow(t *testing.T) {
	cfg := sampledCfg()
	cfg.MeasureInsts = 45_000 // 4 full periods + 5K remainder >= warm+measure
	a, prog := testArena(t, "crypto01", 65_000)
	r, err := wpar.Run(cfg, func() trace.Source { return a.Cursor() }, prog, "crypto01",
		wpar.Options{Workers: 4})
	if err != nil {
		t.Fatalf("wpar run: %v", err)
	}
	if r.Sampled.Windows != 5 {
		t.Fatalf("windows = %d, want 4 full + 1 trailing", r.Sampled.Windows)
	}
	if got := r.TimePar.Boundaries[4]; got != 20_000+45_000-2_000 {
		t.Errorf("trailing window starts at %d, want measure end - DetailedInsts", got)
	}
}
