// Package ucp is a from-scratch Go reproduction of "Alternate Path µ-op
// Cache Prefetching" (Singh, Perais, Jimborean, Ros — ISCA 2024): a
// cycle-approximate CPU frontend/backend simulator with a µ-op cache,
// TAGE-SC-L and ITTAGE predictors, a banked BTB, a decoupled fetch
// engine, standalone L1I prefetcher baselines, and the paper's UCP
// alternate-path prefetcher, driven by synthetic datacenter-style
// workloads that substitute for the proprietary CVP-1 traces.
//
// Quick start:
//
//	profile, _ := ucp.ProfileByName("srv203")
//	base, _ := ucp.RunProfile(ucp.Baseline(), profile)
//	fast, _ := ucp.RunProfile(ucp.WithUCP(ucp.DefaultUCP()), profile)
//	fmt.Printf("UCP speedup: %+.2f%%\n", 100*(fast.IPC/base.IPC-1))
//
// The experiment harness regenerates every table and figure of the
// paper's evaluation; see cmd/experiments and DESIGN.md.
package ucp

import (
	"io"

	"ucp/internal/bpred"
	"ucp/internal/btb"
	"ucp/internal/core"
	"ucp/internal/frontend"
	"ucp/internal/harness"
	"ucp/internal/isa"
	"ucp/internal/sim"
	"ucp/internal/trace"
)

// Core model types, exposed for configuration and inspection.
type (
	// Config describes one simulated machine (Table II + variant knobs).
	Config = sim.Config
	// Result carries the measured metrics of one run.
	Result = sim.Result
	// UCPConfig selects and sizes a UCP variant (§IV).
	UCPConfig = core.Config
	// UCPStats aggregates UCP engine counters.
	UCPStats = core.Stats
	// FrontendConfig sizes the decoupled frontend.
	FrontendConfig = frontend.Config
	// Ideal selects the paper's idealized study modes (§III).
	Ideal = frontend.Ideal
	// PredictorConfig sizes a TAGE-SC-L instance.
	PredictorConfig = bpred.Config
	// Estimator selects the H2P confidence heuristic.
	Estimator = bpred.Estimator

	// Profile parameterizes a synthetic workload.
	Profile = trace.Profile
	// Program is a generated code image.
	Program = trace.Program
	// Source streams dynamic instructions into the simulator.
	Source = trace.Source
	// Inst is one dynamic architectural instruction.
	Inst = isa.Inst

	// ExperimentOptions controls a harness sweep.
	ExperimentOptions = harness.Options
	// Experiments runs and caches the paper's figure/table experiments.
	Experiments = harness.Runner

	// SamplingConfig configures the sampled simulation mode (functional
	// fast-forward between detailed measurement windows).
	SamplingConfig = sim.SamplingConfig
	// SampledStats reports a sampled run's controller and estimator
	// bookkeeping (Result.Sampled, nil on full-detail runs).
	SampledStats = sim.SampledStats
)

// H2P estimator selectors (Fig. 12b).
const (
	EstimatorUCPConf  = bpred.EstimatorUCPConf
	EstimatorTageConf = bpred.EstimatorTageConf
)

// Baseline returns the Table II machine configuration.
func Baseline() Config { return sim.Baseline() }

// WithUCP returns the baseline augmented with a UCP engine.
func WithUCP(u UCPConfig) Config { return sim.WithUCP(u) }

// DefaultUCP is the paper's main proposal (Alt-Ind, UCP-Conf,
// threshold 500; 12.95KB).
func DefaultUCP() UCPConfig { return core.DefaultConfig() }

// NoIndUCP is UCP without the dedicated indirect predictor (8.95KB).
func NoIndUCP() UCPConfig { return core.NoIndConfig() }

// ConservativeSampling is the workload-agnostic sampled-mode geometry
// (unbounded warming; ~3-6× at <2% IPC error).
func ConservativeSampling() SamplingConfig { return sim.ConservativeSampling() }

// FastSampling is the bounded-horizon sampled-mode geometry for
// small-footprint traces (≥10× on the crypto profiles; see
// EXPERIMENTS.md for when NOT to use it).
func FastSampling() SamplingConfig { return sim.FastSampling() }

// DefaultProfiles returns the standard synthetic workload set standing
// in for the paper's CVP-1 trace subset.
func DefaultProfiles() []Profile { return trace.DefaultProfiles() }

// QuickProfiles returns a reduced 4-trace set for fast runs.
func QuickProfiles() []Profile { return trace.QuickProfiles() }

// ProfileByName finds a default profile.
func ProfileByName(name string) (Profile, bool) { return trace.ProfileByName(name) }

// BuildProgram lowers a profile to an executable code image.
func BuildProgram(p Profile) (*Program, error) { return trace.BuildProgram(p) }

// NewWalker returns an endless instruction stream over prog.
func NewWalker(prog *Program) Source { return trace.NewWalker(prog) }

// Limit truncates a source after n instructions.
func Limit(src Source, n int) Source { return trace.NewLimit(src, n) }

// Run executes cfg over an arbitrary instruction source. code provides
// instruction classes for UCP's alternate fill path (a *Program works;
// nil degrades the fill fidelity).
func Run(cfg Config, src Source, code CodeInfo, traceName string) (Result, error) {
	return sim.Run(cfg, src, code, traceName)
}

// CodeInfo exposes instruction classes at addresses (see core.CodeInfo).
type CodeInfo = core.CodeInfo

// RunProfile builds the profile's program and runs cfg over it with the
// configured warmup/measure budget.
func RunProfile(cfg Config, p Profile) (Result, error) {
	prog, err := trace.BuildProgram(p)
	if err != nil {
		return Result{}, err
	}
	need := int(cfg.WarmupInsts+cfg.MeasureInsts) + 200_000
	src := trace.NewLimit(trace.NewWalker(prog), need)
	return sim.Run(cfg, src, prog, p.Name)
}

// NewExperiments builds a harness runner over the given options.
func NewExperiments(opts ExperimentOptions) *Experiments {
	return harness.NewRunner(opts)
}

// DefaultExperimentOptions returns the standard sweep writing to out.
func DefaultExperimentOptions(out io.Writer) ExperimentOptions {
	return harness.DefaultOptions(out)
}

// BlockBTBConfig sizes the block-based BTB organization (§IV-C).
type BlockBTBConfig = btb.BlockConfig

// DefaultBlockBTB returns the block-based BTB geometry matching the
// baseline instruction BTB's reach.
func DefaultBlockBTB() BlockBTBConfig { return btb.DefaultBlockConfig() }
