package ucp_test

import (
	"testing"

	"ucp"
)

func short(cfg ucp.Config) ucp.Config {
	cfg.WarmupInsts, cfg.MeasureInsts = 120_000, 120_000
	return cfg
}

func TestPublicAPIQuickstart(t *testing.T) {
	prof, ok := ucp.ProfileByName("int01")
	if !ok {
		t.Fatal("int01 missing")
	}
	res, err := ucp.RunProfile(short(ucp.Baseline()), prof)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.Insts < 100_000 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestPublicAPIUCP(t *testing.T) {
	prof, _ := ucp.ProfileByName("srv201")
	res, err := ucp.RunProfile(short(ucp.WithUCP(ucp.DefaultUCP())), prof)
	if err != nil {
		t.Fatal(err)
	}
	if res.UCP.Triggers == 0 {
		t.Fatal("UCP did not trigger through the public API")
	}
}

func TestPublicAPICustomSource(t *testing.T) {
	prof, _ := ucp.ProfileByName("crypto01")
	prog, err := ucp.BuildProgram(prof)
	if err != nil {
		t.Fatal(err)
	}
	src := ucp.Limit(ucp.NewWalker(prog), 300_000)
	res, err := ucp.Run(short(ucp.Baseline()), src, prog, "custom")
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != "custom" || res.IPC <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestPublicAPIProfileListing(t *testing.T) {
	all := ucp.DefaultProfiles()
	if len(all) < 15 {
		t.Fatalf("only %d default profiles", len(all))
	}
	quick := ucp.QuickProfiles()
	if len(quick) >= len(all) {
		t.Fatal("quick set not smaller than default set")
	}
	if _, ok := ucp.ProfileByName("definitely-not-a-profile"); ok {
		t.Fatal("phantom profile")
	}
}

func TestUCPConfigKnobs(t *testing.T) {
	u := ucp.DefaultUCP()
	if u.StopThreshold != 500 {
		t.Fatalf("default stop threshold %d, want 500 (§IV-E)", u.StopThreshold)
	}
	if !u.UseAltInd {
		t.Fatal("default UCP must include Alt-Ind (12.95KB flavor)")
	}
	n := ucp.NoIndUCP()
	if n.UseAltInd {
		t.Fatal("NoIndUCP must drop Alt-Ind (8.95KB flavor)")
	}
}
